//! Schema-versioned JSON persistence for crash-consistent artifacts.
//!
//! Two artifact families need durable, replayable on-disk state: relcheck
//! repro cases (PR 5) and fleet checkpoints (this subsystem). Both are
//! small schema-versioned JSON documents whose writes must be atomic — a
//! crash mid-write must leave either the old file or the new file, never
//! a truncated hybrid — and whose reads must fail with a clear error on
//! corruption instead of panicking. [`Persist`] captures that contract
//! once: implementors supply the `kind` tag, the current schema version,
//! which older versions they still accept, and the field-level
//! (de)serialization; the trait provides header validation, atomic
//! `save`, and path-contextualized `load`.
//!
//! The module also hosts the shared value-encoding helpers both
//! implementors need: hex-string encoding for `u64`s that may exceed
//! 2^53 (the in-repo JSON layer keeps numbers as `f64`), a debug-format
//! FNV-1a digest for fault populations, and the order-sensitive digest
//! fold the population digests and manifest config hashes use.
//!
//! # Examples
//!
//! ```
//! use relaxfault_util::json::Value;
//! use relaxfault_util::persist::{self, Persist};
//!
//! struct Marker {
//!     seed: u64,
//! }
//! impl Persist for Marker {
//!     const KIND: &'static str = "marker";
//!     const SCHEMA_VERSION: u64 = 1;
//!     fn to_json(&self) -> Value {
//!         Value::object([
//!             ("schema_version", Value::from(Self::SCHEMA_VERSION)),
//!             ("kind", Value::from(Self::KIND)),
//!             ("seed", persist::hex(self.seed)),
//!         ])
//!     }
//!     fn from_json(v: &Value) -> Result<Self, String> {
//!         Self::check_header(v)?;
//!         let seed = persist::parse_hex_field(v, "seed")?;
//!         Ok(Marker { seed })
//!     }
//! }
//!
//! let m = Marker { seed: u64::MAX };
//! let text = m.to_json().to_pretty();
//! assert_eq!(Marker::parse_str(&text).unwrap().seed, u64::MAX);
//! ```

use crate::json::Value;
use crate::obs;
use std::path::Path;

/// A schema-versioned, kind-tagged JSON artifact with atomic persistence.
///
/// Implementors provide the identity constants and the body
/// (de)serialization; the provided methods add header validation, string
/// parsing, and crash-safe file I/O shared by every artifact family.
pub trait Persist: Sized {
    /// The `kind` tag distinguishing this artifact family from obs
    /// snapshots and from other [`Persist`] implementors.
    const KIND: &'static str;

    /// Current schema version; bump on breaking layout changes.
    const SCHEMA_VERSION: u64;

    /// Whether a file written at `version` is still readable. The default
    /// accepts only the current version; implementors that keep
    /// backward-compatible readers widen this.
    fn accepts_version(version: u64) -> bool {
        version == Self::SCHEMA_VERSION
    }

    /// Serializes the artifact. The produced object must carry
    /// `schema_version` and `kind` so [`Persist::check_header`] can
    /// validate files before field decoding.
    fn to_json(&self) -> Value;

    /// Deserializes an artifact previously produced by
    /// [`Persist::to_json`] (at any [`Persist::accepts_version`] version).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    fn from_json(v: &Value) -> Result<Self, String>;

    /// Validates the `kind` and `schema_version` header fields and
    /// returns the file's version.
    ///
    /// # Errors
    ///
    /// Rejects missing headers, foreign kinds, and versions outside
    /// [`Persist::accepts_version`].
    fn check_header(v: &Value) -> Result<u64, String> {
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("missing kind (expected {:?})", Self::KIND))?;
        if kind != Self::KIND {
            return Err(format!("kind must be {:?}, found {kind:?}", Self::KIND));
        }
        let version = v
            .get("schema_version")
            .and_then(Value::as_f64)
            .ok_or("missing schema_version")? as u64;
        if !Self::accepts_version(version) {
            return Err(format!(
                "unsupported {} schema version {version} (current {})",
                Self::KIND,
                Self::SCHEMA_VERSION
            ));
        }
        Ok(version)
    }

    /// Parses an artifact from JSON text (e.g. freshly read file
    /// contents).
    ///
    /// # Errors
    ///
    /// Reports JSON syntax errors and field-level decode failures.
    fn parse_str(text: &str) -> Result<Self, String> {
        let doc = Value::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        Self::from_json(&doc)
    }

    /// Loads an artifact from `path`, contextualizing every failure with
    /// the path so corrupted or truncated files produce an actionable
    /// error instead of a panic.
    ///
    /// # Errors
    ///
    /// Reports unreadable files, JSON syntax errors, and schema
    /// mismatches, each prefixed with the offending path.
    fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
        Self::parse_str(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Writes the artifact to `path` atomically (temp file + rename in
    /// the destination directory), creating parent directories as needed.
    /// A crash mid-save leaves the previous file intact.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation, write, and rename failures with
    /// path context.
    fn save(&self, path: &Path) -> Result<(), String> {
        atomic_write(path, &self.to_json().to_pretty())
    }
}

/// Atomically replaces `path` with `contents` via a same-directory temp
/// file and rename, creating parent directories first. This is the write
/// idiom every crash-consistent artifact in the workspace uses: rename
/// within one directory is atomic on POSIX, so readers observe either
/// the old complete file or the new complete file.
///
/// # Errors
///
/// Propagates directory-creation, write, and rename failures with path
/// context.
pub fn atomic_write(path: &Path, contents: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("{}: cannot create dir: {e}", dir.display()))?;
        }
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, contents)
        .map_err(|e| format!("{}: cannot write temp file: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("{}: cannot rename into place: {e}", path.display()))
}

/// Encodes a `u64` that may exceed 2^53 as a `0x`-prefixed 16-digit hex
/// string (the in-repo JSON layer keeps numbers as `f64`, which would
/// silently round larger integers).
pub fn hex(v: u64) -> Value {
    Value::from(format!("{v:#018x}"))
}

/// Decodes a value written by [`hex`] (bare hex without the `0x` prefix
/// is accepted too).
pub fn parse_hex(v: &Value) -> Option<u64> {
    let s = v.as_str()?;
    u64::from_str_radix(s.trim_start_matches("0x"), 16).ok()
}

/// Reads field `key` of object `v` as a hex-encoded `u64`.
///
/// # Errors
///
/// Reports the field name when missing or malformed.
pub fn parse_hex_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(parse_hex)
        .ok_or_else(|| format!("{key} must be a hex string"))
}

/// Reads field `key` of object `v` as a non-negative integer small enough
/// for exact `f64` representation.
///
/// # Errors
///
/// Reports the field name when missing or malformed.
pub fn parse_u64_field(v: &Value, key: &str) -> Result<u64, String> {
    let n = v
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{key} must be a number"))?;
    if !(n >= 0.0 && n == n.trunc() && n < 9e15) {
        return Err(format!("{key} must be a non-negative integer, got {n}"));
    }
    Ok(n as u64)
}

/// Order-sensitive digest fold: absorbs `next` into the accumulator the
/// same way the obs manifest folds config hashes (FNV-1a over the
/// concatenated little-endian words). Folding a sequence of per-item
/// digests this way yields a population digest that is sensitive to both
/// content and order, and can be resumed from any prefix — fold state IS
/// the digest, which is what lets fleet checkpoints carry per-shard
/// digests that extend across resumes.
pub fn fold_digest(acc: u64, next: u64) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&acc.to_le_bytes());
    bytes[8..].copy_from_slice(&next.to_le_bytes());
    obs::fnv1a(&bytes)
}

/// FNV-1a digest of a value's `Debug` representation. The debug form
/// covers every field, so any structural divergence changes the hash;
/// repro cases and fleet shards both use this as their population
/// fingerprint.
pub fn digest_debug<T: std::fmt::Debug>(v: &T) -> u64 {
    obs::fnv1a(format!("{v:?}").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Sample {
        seed: u64,
        count: u64,
    }

    impl Persist for Sample {
        const KIND: &'static str = "persist_test_sample";
        const SCHEMA_VERSION: u64 = 3;

        fn accepts_version(version: u64) -> bool {
            (2..=3).contains(&version)
        }

        fn to_json(&self) -> Value {
            Value::object([
                ("schema_version", Value::from(Self::SCHEMA_VERSION)),
                ("kind", Value::from(Self::KIND)),
                ("seed", hex(self.seed)),
                ("count", Value::from(self.count)),
            ])
        }

        fn from_json(v: &Value) -> Result<Self, String> {
            Self::check_header(v)?;
            Ok(Sample {
                seed: parse_hex_field(v, "seed")?,
                count: parse_u64_field(v, "count")?,
            })
        }
    }

    fn scratch_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rf_persist_{}_{name}", std::process::id()))
    }

    #[test]
    fn round_trip_and_header_validation() {
        let s = Sample {
            seed: u64::MAX - 1,
            count: 42,
        };
        let text = s.to_json().to_pretty();
        assert_eq!(Sample::parse_str(&text).unwrap(), s);

        // Version inside the accepted window parses; outside is rejected.
        let old = text.replace("\"schema_version\": 3", "\"schema_version\": 2");
        assert!(Sample::parse_str(&old).is_ok());
        let ancient = text.replace("\"schema_version\": 3", "\"schema_version\": 1");
        let err = Sample::parse_str(&ancient).unwrap_err();
        assert!(err.contains("schema version 1"), "{err}");

        // Foreign kinds never decode.
        let foreign = text.replace("persist_test_sample", "metrics_snapshot");
        assert!(Sample::parse_str(&foreign).unwrap_err().contains("kind"));
    }

    #[test]
    fn load_reports_path_on_every_failure() {
        let missing = scratch_path("missing.json");
        let err = Sample::load(&missing).unwrap_err();
        assert!(err.contains("missing.json"), "{err}");

        let truncated = scratch_path("truncated.json");
        std::fs::write(&truncated, "{\"schema_version\": 3, \"kind\"").unwrap();
        let err = Sample::load(&truncated).unwrap_err();
        assert!(
            err.contains("truncated.json") && err.contains("JSON"),
            "{err}"
        );
        std::fs::remove_file(&truncated).unwrap();
    }

    #[test]
    fn save_is_atomic_and_loadable() {
        let dir = scratch_path("save_dir");
        let path = dir.join("nested").join("artifact.json");
        let s = Sample {
            seed: 0xDEAD_BEEF,
            count: 7,
        };
        s.save(&path).unwrap();
        assert_eq!(Sample::load(&path).unwrap(), s);
        // No temp litter left behind.
        let entries: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(entries.len(), 1, "leftover temp files: {entries:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hex_round_trips_extremes() {
        for v in [0, 1, (1u64 << 53) + 1, u64::MAX] {
            assert_eq!(parse_hex(&hex(v)), Some(v));
        }
        assert_eq!(parse_hex(&Value::from(12.0)), None);
        assert_eq!(parse_hex(&Value::from("zz")), None);
    }

    #[test]
    fn parse_u64_field_rejects_lossy_numbers() {
        let v = Value::object([
            ("neg", Value::from(-1.0)),
            ("frac", Value::from(1.5)),
            ("big", Value::from(1e16)),
            ("ok", Value::from(12.0)),
        ]);
        assert!(parse_u64_field(&v, "neg").is_err());
        assert!(parse_u64_field(&v, "frac").is_err());
        assert!(parse_u64_field(&v, "big").is_err());
        assert_eq!(parse_u64_field(&v, "ok").unwrap(), 12);
        assert!(parse_u64_field(&v, "absent").is_err());
    }

    #[test]
    fn fold_digest_is_order_sensitive_and_resumable() {
        let a = fold_digest(fold_digest(0, 1), 2);
        let b = fold_digest(fold_digest(0, 2), 1);
        assert_ne!(a, b, "fold must be order-sensitive");
        // Resuming the fold from a checkpointed accumulator continues the
        // same stream.
        let prefix = fold_digest(0, 1);
        assert_eq!(fold_digest(prefix, 2), a);
    }

    #[test]
    fn digest_debug_tracks_content() {
        assert_eq!(digest_debug(&(1u32, 2u32)), digest_debug(&(1u32, 2u32)));
        assert_ne!(digest_debug(&(1u32, 2u32)), digest_debug(&(1u32, 3u32)));
    }
}
