//! Flight recorder: always-on, bounded-memory capture of recent events.
//!
//! The tracing buffers in [`crate::obs`] grow until a sink drains them at
//! the end of a run — fine for post-hoc artifacts, useless for a process
//! that has been stepping a fleet simulation for minutes and just crashed,
//! or that an operator wants to inspect *right now*. The flight recorder
//! keeps the **most recent** events in per-thread ring buffers of fixed
//! capacity, so memory stays bounded no matter how long the run is, and a
//! non-destructive [`snapshot`] can be taken at any time: by the live
//! `/flight` endpoint in [`crate::serve`], or by a crash dump in
//! [`crate::crashdump`] on the way down.
//!
//! Two streams feed it:
//!
//! * every event that passes the `RF_TRACE` filter (recorded by
//!   [`crate::obs::emit`] before it enters the ordinary trace buffers), and
//! * a synthetic completion event per metrics span (target
//!   [`crate::obs::SPAN_TARGET`], field `ns`), emitted when a
//!   [`crate::obs::SpanTimer`] drops while metrics are on — so the recorder
//!   sees span timings even when tracing is off.
//!
//! # Concurrency and determinism
//!
//! Each worker thread owns its ring and writes through a mutex that no
//! other thread touches during normal operation, so writers never contend
//! with each other — a reader taking a [`snapshot`] locks each ring just
//! long enough to clone it, and a writer that loses that race blocks only
//! for the clone of its own ring. Events carry the same deterministic
//! `(trial, group, seq)` keys as the trace stream and [`snapshot`] merges
//! with [`crate::obs::sort_merged`], so as long as no ring has wrapped,
//! the drained order is byte-identical across thread counts — the same
//! contract `drain_events` makes, tested in `tests/live_plane.rs`.
//! Once a ring wraps, the oldest events are gone (counted by
//! [`overwritten`]) and the retained *window* becomes thread-count
//! dependent even though the sort order of what remains never is.
//!
//! The recorder defaults to on with capacity 4096 events per thread;
//! `RF_FLIGHT=off` kills it, `RF_FLIGHT_CAP=<n>` resizes it. The recording
//! fast path when disabled is one relaxed atomic load.

use crate::obs::Event;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default per-thread ring capacity (events), before `RF_FLIGHT_CAP`.
pub const DEFAULT_CAP: usize = 4096;

/// One thread's ring: a vector that grows to capacity and then becomes a
/// circular buffer with `next` as the write (and oldest-entry) cursor.
struct Ring {
    inner: Mutex<RingInner>,
}

struct RingInner {
    buf: Vec<Event>,
    next: usize,
}

struct FlightGlobal {
    enabled: AtomicBool,
    cap: AtomicUsize,
    overwritten: AtomicU64,
    rings: Mutex<Vec<Arc<Ring>>>,
}

fn global() -> &'static FlightGlobal {
    static GLOBAL: OnceLock<FlightGlobal> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let off = std::env::var("RF_FLIGHT")
            .map(|v| matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"))
            .unwrap_or(false);
        let cap = std::env::var("RF_FLIGHT_CAP")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CAP);
        FlightGlobal {
            enabled: AtomicBool::new(!off),
            cap: AtomicUsize::new(cap),
            overwritten: AtomicU64::new(0),
            rings: Mutex::new(Vec::new()),
        }
    })
}

thread_local! {
    static LOCAL_RING: RefCell<Option<Arc<Ring>>> = const { RefCell::new(None) };
}

/// Whether recording is on — the fast gate callers check before cloning an
/// event (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    global().enabled.load(Ordering::Relaxed)
}

/// Turns recording on or off (the programmatic `RF_FLIGHT`). Existing ring
/// contents are kept either way.
pub fn set_enabled(on: bool) {
    global().enabled.store(on, Ordering::Relaxed);
}

/// Sets the per-thread ring capacity for subsequent records (the
/// programmatic `RF_FLIGHT_CAP`); zero is clamped to one. Rings that
/// already grew past a smaller capacity keep their length but stop
/// growing and overwrite in place.
pub fn set_capacity(cap: usize) {
    global().cap.store(cap.max(1), Ordering::Relaxed);
}

/// Current per-thread ring capacity.
pub fn capacity() -> usize {
    global().cap.load(Ordering::Relaxed)
}

/// Records one event into the calling thread's ring, overwriting the
/// oldest entry when full. No-op while disabled.
pub fn record(event: Event) {
    let g = global();
    if !g.enabled.load(Ordering::Relaxed) {
        return;
    }
    LOCAL_RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        let ring = slot.get_or_insert_with(|| {
            let ring = Arc::new(Ring {
                inner: Mutex::new(RingInner {
                    buf: Vec::new(),
                    next: 0,
                }),
            });
            let mut rings = g.rings.lock().expect("flight ring registry");
            // Rings of exited threads are kept until [`clear`] so their
            // recent events stay drainable, but bound the registry against
            // pathological thread churn.
            if rings.len() >= 256 {
                rings.retain(|r| Arc::strong_count(r) > 1);
            }
            rings.push(ring.clone());
            ring
        });
        let cap = g.cap.load(Ordering::Relaxed);
        let mut inner = ring.inner.lock().expect("flight ring");
        if inner.buf.len() < cap {
            inner.buf.push(event);
        } else {
            // Full (or capacity shrank): overwrite the oldest entry.
            let next = inner.next % inner.buf.len();
            inner.buf[next] = event;
            inner.next = (next + 1) % inner.buf.len();
            g.overwritten.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Events discarded by ring wraparound since the last [`clear`]. When this
/// is zero, [`snapshot`] holds the *complete* recorded stream and its
/// merged order is thread-count independent.
pub fn overwritten() -> u64 {
    global().overwritten.load(Ordering::Relaxed)
}

/// Clones every ring's contents (without consuming them) and merges the
/// result into the canonical deterministic order of
/// [`crate::obs::sort_merged`]. Safe to call at any time, including while
/// workers are still recording: each ring is locked only for its clone.
pub fn snapshot() -> Vec<Event> {
    let rings: Vec<Arc<Ring>> = global().rings.lock().expect("flight ring registry").clone();
    let mut all: Vec<Event> = Vec::new();
    for ring in rings {
        let inner = ring.inner.lock().expect("flight ring");
        // Oldest-first: the tail from the write cursor, then the head.
        if inner.buf.len() > inner.next {
            all.extend_from_slice(&inner.buf[inner.next..]);
        }
        all.extend_from_slice(&inner.buf[..inner.next.min(inner.buf.len())]);
    }
    crate::obs::sort_merged(all)
}

/// Empties every ring, drops rings of exited threads, and zeroes the
/// overwritten count. Wired into [`crate::obs::reset`].
pub fn clear() {
    let g = global();
    let mut rings = g.rings.lock().expect("flight ring registry");
    for ring in rings.iter() {
        let mut inner = ring.inner.lock().expect("flight ring");
        inner.buf.clear();
        inner.next = 0;
    }
    rings.retain(|r| Arc::strong_count(r) > 1);
    g.overwritten.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{self, Level};
    use crate::trace_event;

    /// Restores default recorder + obs state when dropped.
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            obs::set_filter("").expect("empty filter parses");
            obs::set_metrics_enabled(false);
            set_enabled(true);
            set_capacity(DEFAULT_CAP);
            obs::reset();
        }
    }

    fn emit_scoped(trial: u64, n: u64) {
        let _scope = obs::scope(trial, 0);
        for i in 0..n {
            trace_event!(target: "flighttest", Level::Debug, "tick", i = i);
        }
    }

    #[test]
    fn wraparound_keeps_newest_events_and_counts_losses() {
        let _serial = obs::exclusive();
        let _restore = Restore;
        obs::reset();
        obs::set_filter("flighttest=debug").unwrap();
        set_capacity(8);
        emit_scoped(1, 20);
        let events = snapshot();
        assert_eq!(events.len(), 8, "ring holds exactly its capacity");
        assert_eq!(overwritten(), 12, "12 of 20 events were overwritten");
        // The survivors are the 8 newest, in deterministic seq order.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn snapshot_is_nondestructive_and_clear_empties() {
        let _serial = obs::exclusive();
        let _restore = Restore;
        obs::reset();
        obs::set_filter("flighttest=debug").unwrap();
        emit_scoped(3, 5);
        assert_eq!(snapshot().len(), 5);
        assert_eq!(snapshot().len(), 5, "snapshot does not consume");
        clear();
        assert_eq!(snapshot().len(), 0);
        assert_eq!(overwritten(), 0);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _serial = obs::exclusive();
        let _restore = Restore;
        obs::reset();
        obs::set_filter("flighttest=debug").unwrap();
        set_enabled(false);
        emit_scoped(0, 4);
        assert_eq!(snapshot().len(), 0);
    }

    #[test]
    fn span_completions_become_keyed_events() {
        let _serial = obs::exclusive();
        let _restore = Restore;
        obs::reset();
        obs::set_metrics_enabled(true);
        {
            let _scope = obs::scope(9, 2);
            let _span = obs::span("flighttest.work_ns");
        }
        let events = snapshot();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.target, obs::SPAN_TARGET);
        assert_eq!(e.name, "flighttest.work_ns");
        assert_eq!((e.trial, e.group, e.seq), (9, 2, 0));
        assert_eq!(e.fields.len(), 1);
        assert_eq!(e.fields[0].0, "ns");
    }

    #[test]
    fn drain_during_write_is_safe_and_monotone() {
        let _serial = obs::exclusive();
        let _restore = Restore;
        obs::reset();
        obs::set_filter("flighttest=debug").unwrap();
        set_capacity(1 << 14);
        let writer = std::thread::spawn(|| {
            for trial in 0..200u64 {
                emit_scoped(trial, 10);
            }
        });
        // Concurrent snapshots while the writer is mid-flight: must never
        // panic, and observed sizes only grow (nothing wraps at this cap).
        let mut last = 0usize;
        for _ in 0..50 {
            let n = snapshot().len();
            assert!(n >= last, "snapshot shrank from {last} to {n}");
            last = n;
        }
        writer.join().expect("writer thread");
        assert_eq!(snapshot().len(), 2000);
        assert_eq!(overwritten(), 0);
    }
}
