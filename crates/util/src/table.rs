//! Minimal fixed-width table rendering for the figure-regeneration binaries.
//!
//! The paper's evaluation is a set of tables and line series; each harness
//! binary prints one of them. This module keeps that output aligned and
//! machine-recoverable (CSV) without pulling in a rendering dependency.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// # Examples
///
/// ```
/// use relaxfault_util::table::Table;
/// let mut t = Table::new(&["mechanism", "coverage"]);
/// t.row(&["RelaxFault", "90.3%"]);
/// let text = t.render();
/// assert!(text.contains("RelaxFault"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: AsRef<str>>(headers: &[S]) -> Self {
        Self {
            headers: headers.iter().map(|h| h.as_ref().to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
        self
    }

    /// Appends a row of mixed displayable values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let strings: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&strings)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with space-aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
            }
            // Trim trailing padding on the last column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as a JSON array of objects, one per row, keyed by
    /// the column headers. Cells stay strings: they are already formatted
    /// for presentation (`90.3%`, `82KiB`), and re-parsing them would lose
    /// that.
    pub fn to_json(&self) -> crate::json::Value {
        crate::json::Value::Array(
            self.rows
                .iter()
                .map(|row| {
                    crate::json::Value::Object(
                        self.headers
                            .iter()
                            .zip(row)
                            .map(|(h, c)| (h.clone(), c.as_str().into()))
                            .collect(),
                    )
                })
                .collect(),
        )
    }

    /// Renders the table as CSV (no quoting; callers must avoid commas in
    /// cells, which all harnesses in this workspace do).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a byte count the way the paper reports LLC budgets
/// (`64B`, `82KiB`, `1.5MiB`).
///
/// # Examples
///
/// ```
/// use relaxfault_util::table::format_bytes;
/// assert_eq!(format_bytes(64), "64B");
/// assert_eq!(format_bytes(83_968), "82KiB");
/// assert_eq!(format_bytes(1_572_864), "1.5MiB");
/// ```
pub fn format_bytes(bytes: u64) -> String {
    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * 1024;
    if bytes >= MIB {
        let m = bytes as f64 / MIB as f64;
        if (m - m.round()).abs() < 1e-9 {
            format!("{}MiB", m.round() as u64)
        } else {
            format!("{m:.1}MiB")
        }
    } else if bytes >= KIB {
        let k = bytes as f64 / KIB as f64;
        if (k - k.round()).abs() < 1e-9 {
            format!("{}KiB", k.round() as u64)
        } else {
            format!("{k:.1}KiB")
        }
    } else {
        format!("{bytes}B")
    }
}

/// Formats a fraction as a percentage with one decimal (`0.903` → `90.3%`).
pub fn format_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["wide-cell-value", "1"]);
        t.row(&["x", "22"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Column 2 starts at the same offset on each data line.
        let off1 = lines[2].find('1').unwrap();
        let off2 = lines[3].find("22").unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn json_output() {
        let mut t = Table::new(&["mechanism", "coverage"]);
        t.row(&["RelaxFault", "90.3%"]);
        t.row(&["PPR", "33.1%"]);
        assert_eq!(
            t.to_json().to_string(),
            r#"[{"mechanism":"RelaxFault","coverage":"90.3%"},{"mechanism":"PPR","coverage":"33.1%"}]"#
        );
        // And it parses back.
        let v = crate::json::Value::parse(&t.to_json().to_pretty()).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 2);
        assert_eq!(
            v.as_array().unwrap()[1].get("coverage").unwrap().as_str(),
            Some("33.1%")
        );
    }

    #[test]
    fn row_display_converts() {
        let mut t = Table::new(&["n", "f"]);
        t.row_display(&[&42u32, &1.5f64]);
        assert!(t.render().contains("42"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(0), "0B");
        assert_eq!(format_bytes(1023), "1023B");
        assert_eq!(format_bytes(1024), "1KiB");
        assert_eq!(format_bytes(1024 * 1024), "1MiB");
        assert_eq!(format_bytes(96 * 1024 + 512), "96.5KiB");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(format_pct(0.903), "90.3%");
        assert_eq!(format_pct(1.0), "100.0%");
    }
}
