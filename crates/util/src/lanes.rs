//! Bitplane lanes for the bit-sliced Monte Carlo trial kernel.
//!
//! A *lane word* packs one boolean per trial — bit `i` of a [`Lane`]
//! belongs to trial `block_start + i` — so bulk bookkeeping over a block
//! of trials collapses to word-wide boolean algebra: one XOR advances
//! every trial in the block at once, one popcount retires all of the
//! block's clean trials, and `trailing_zeros` walks only the set bits
//! (the faulty trials that still need the full scalar pipeline).
//!
//! Two lane widths are provided (`u64`, `u128`), selected at run time by
//! [`LaneMode`]; a `std::simd` backend is left as a feature-gated
//! follow-up once portable SIMD stabilises. Everything here is plain
//! integer arithmetic — zero dependencies, bit-identical on every
//! platform.
//!
//! # Examples
//!
//! ```
//! use relaxfault_util::lanes::{pack, popcount_reduce, transpose, Lane};
//!
//! // Pack per-trial predicates into one lane word …
//! let faulty: u64 = pack(64, |trial| trial % 7 == 0);
//! // … retire the clean trials in bulk …
//! assert_eq!(64 - faulty.popcount(), 54);
//! // … and walk only the faulty ones.
//! assert!(faulty.ones().all(|i| i % 7 == 0));
//!
//! // Transposing a 64×64 bit matrix twice is the identity.
//! let mut m: Vec<u64> = (0..64).map(|r| 0x9E3779B97F4A7C15u64.rotate_left(r)).collect();
//! let orig = m.clone();
//! transpose(&mut m);
//! transpose(&mut m);
//! assert_eq!(m, orig);
//! assert_eq!(popcount_reduce(&orig), popcount_reduce(&m));
//! ```

use std::sync::OnceLock;

/// Which lane width the trial kernel batches with. `Scalar` disables
/// batching entirely (the reference path); `U64`/`U128` evaluate 64 or
/// 128 trials per lane word. Every mode is bit-identical — the knob
/// trades instruction mix, not results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneMode {
    /// No batching: one trial at a time (the reference kernel).
    Scalar,
    /// 64 trials per lane word.
    U64,
    /// 128 trials per lane word.
    U128,
}

impl LaneMode {
    /// Every mode, in the order the CI lane matrix sweeps them.
    pub const ALL: [LaneMode; 3] = [LaneMode::Scalar, LaneMode::U64, LaneMode::U128];

    /// Parses a `--lanes` / `RF_LANES` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(LaneMode::Scalar),
            "u64" => Some(LaneMode::U64),
            "u128" => Some(LaneMode::U128),
            _ => None,
        }
    }

    /// Canonical label (round-trips through [`LaneMode::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            LaneMode::Scalar => "scalar",
            LaneMode::U64 => "u64",
            LaneMode::U128 => "u128",
        }
    }
}

static MODE: OnceLock<LaneMode> = OnceLock::new();

fn mode_from_env() -> LaneMode {
    match std::env::var("RF_LANES") {
        Ok(v) => LaneMode::parse(&v).unwrap_or_else(|| {
            eprintln!("warning: RF_LANES={v:?} not one of scalar|u64|u128; using u64");
            LaneMode::U64
        }),
        Err(_) => LaneMode::U64,
    }
}

/// The process-wide default lane mode: the first of `set_mode` /
/// `RF_LANES` / `u64` to apply, resolved once. Run-level overrides
/// (e.g. the relcheck lane matrix) bypass this global entirely.
pub fn mode() -> LaneMode {
    *MODE.get_or_init(mode_from_env)
}

/// Pins the process-wide default lane mode (e.g. from a `--lanes` flag).
/// Returns `false` if the mode was already resolved to something else —
/// callers should set it before the first simulation starts.
pub fn set_mode(m: LaneMode) -> bool {
    MODE.set(m).is_ok() || mode() == m
}

/// One bitplane word: a fixed-width unsigned integer holding one boolean
/// per trial. The trait exposes exactly the operations the bit-sliced
/// kernel needs; `u64` and `u128` implement it with single instructions.
pub trait Lane:
    Copy
    + Eq
    + std::fmt::Debug
    + std::ops::BitAnd<Output = Self>
    + std::ops::BitOr<Output = Self>
    + std::ops::BitXor<Output = Self>
    + std::ops::Not<Output = Self>
    + std::ops::Shl<u32, Output = Self>
    + std::ops::Shr<u32, Output = Self>
{
    /// Trials per lane word.
    const BITS: u32;
    /// The empty mask.
    const ZERO: Self;
    /// The full mask.
    const ONES: Self;

    /// The mask with only bit `i` set.
    fn bit(i: u32) -> Self;

    /// The mask of the lowest `n` bits (`n ≤ BITS`; `n == BITS` gives
    /// [`Lane::ONES`]).
    fn lsbs(n: u32) -> Self;

    /// Number of set bits.
    fn popcount(self) -> u32;

    /// Index of the lowest set bit (`BITS` when empty).
    fn trailing_zeros(self) -> u32;

    /// Clears the lowest set bit (identity on the empty mask).
    fn clear_lowest(self) -> Self;

    /// Iterates the indices of set bits, ascending.
    fn ones(self) -> Ones<Self> {
        Ones { rest: self }
    }

    /// Lane-masked select: bit `i` of the result comes from `a` where
    /// `mask` has bit `i` set, else from `b`.
    fn select(mask: Self, a: Self, b: Self) -> Self {
        (a & mask) | (b & !mask)
    }
}

macro_rules! impl_lane {
    ($($t:ty),*) => {$(
        impl Lane for $t {
            const BITS: u32 = <$t>::BITS;
            const ZERO: Self = 0;
            const ONES: Self = <$t>::MAX;

            #[inline]
            fn bit(i: u32) -> Self {
                debug_assert!(i < Self::BITS);
                1 << i
            }

            #[inline]
            fn lsbs(n: u32) -> Self {
                debug_assert!(n <= Self::BITS);
                if n == Self::BITS {
                    Self::ONES
                } else {
                    (1 << n) - 1
                }
            }

            #[inline]
            fn popcount(self) -> u32 {
                self.count_ones()
            }

            #[inline]
            fn trailing_zeros(self) -> u32 {
                <$t>::trailing_zeros(self)
            }

            #[inline]
            fn clear_lowest(self) -> Self {
                self & self.wrapping_sub(1)
            }
        }
    )*};
}

impl_lane!(u64, u128);

/// Iterator over the set-bit indices of a lane word (see [`Lane::ones`]).
#[derive(Debug, Clone, Copy)]
pub struct Ones<L: Lane> {
    rest: L,
}

impl<L: Lane> Iterator for Ones<L> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.rest == L::ZERO {
            return None;
        }
        let i = self.rest.trailing_zeros();
        self.rest = self.rest.clear_lowest();
        Some(i)
    }
}

/// Packs per-lane predicates into one word: bit `i` of the result is
/// `f(i)` for `i < n`, zero above (`n ≤ L::BITS`).
#[inline]
pub fn pack<L: Lane>(n: u32, mut f: impl FnMut(u32) -> bool) -> L {
    debug_assert!(n <= L::BITS);
    let mut word = L::ZERO;
    for i in 0..n {
        if f(i) {
            word = word | L::bit(i);
        }
    }
    word
}

/// Total set bits across a bitplane slice — the popcount-reduce the
/// kernel uses to retire a whole block's clean trials in one step.
pub fn popcount_reduce<L: Lane>(words: &[L]) -> u64 {
    words.iter().map(|w| w.popcount() as u64).sum()
}

/// In-place transpose of a square bit matrix: `a` holds `L::BITS` rows of
/// `L::BITS` bits, and afterwards bit `r` of word `c` equals what bit `c`
/// of word `r` was. This is the AoS↔SoA pivot between "one word per
/// trial" and "one bitplane per predicate" (Hacker's Delight 7-3, with
/// the shifts mirrored for LSB-first bit indexing and generalised to any
/// power-of-two lane width).
///
/// # Panics
///
/// Panics if `a.len() != L::BITS`.
pub fn transpose<L: Lane>(a: &mut [L]) {
    assert_eq!(a.len(), L::BITS as usize, "transpose needs a square matrix");
    let mut j = L::BITS / 2;
    let mut m = L::lsbs(L::BITS / 2);
    while j != 0 {
        let mut k = 0usize;
        while k < L::BITS as usize {
            let t = ((a[k] >> j) ^ a[k + j as usize]) & m;
            a[k] = a[k] ^ (t << j);
            a[k + j as usize] = a[k + j as usize] ^ t;
            k = (k + j as usize + 1) & !(j as usize);
        }
        j >>= 1;
        m = m ^ (m << j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, Rng64};

    fn naive_transpose<L: Lane>(a: &[L]) -> Vec<L> {
        let n = L::BITS;
        (0..n)
            .map(|c| pack(n, |r| a[r as usize] & L::bit(c) != L::ZERO))
            .collect()
    }

    #[test]
    fn mode_labels_round_trip() {
        for m in LaneMode::ALL {
            assert_eq!(LaneMode::parse(m.label()), Some(m));
        }
        assert_eq!(LaneMode::parse(" U64 "), Some(LaneMode::U64));
        assert_eq!(LaneMode::parse("avx512"), None);
    }

    #[test]
    fn bit_and_lsbs_kats() {
        assert_eq!(<u64 as Lane>::bit(0), 1);
        assert_eq!(<u64 as Lane>::bit(63), 1 << 63);
        assert_eq!(<u64 as Lane>::lsbs(0), 0);
        assert_eq!(<u64 as Lane>::lsbs(7), 0x7F);
        assert_eq!(<u64 as Lane>::lsbs(64), u64::MAX);
        assert_eq!(<u128 as Lane>::lsbs(128), u128::MAX);
        assert_eq!(<u128 as Lane>::bit(127), 1u128 << 127);
    }

    #[test]
    fn ones_iterates_set_bits_ascending() {
        let w: u64 = (1 << 0) | (1 << 17) | (1 << 63);
        assert_eq!(w.ones().collect::<Vec<_>>(), vec![0, 17, 63]);
        assert_eq!(<u64 as Lane>::ZERO.ones().count(), 0);
        let all: u128 = Lane::ONES;
        assert_eq!(all.ones().count(), 128);
        assert_eq!(all.ones().last(), Some(127));
    }

    #[test]
    fn select_mixes_per_bit() {
        let a: u64 = 0xFFFF_0000_FFFF_0000;
        let b: u64 = 0x0000_FFFF_0000_FFFF;
        assert_eq!(<u64 as Lane>::select(u64::MAX, a, b), a);
        assert_eq!(<u64 as Lane>::select(0, a, b), b);
        let mask: u64 = 0x00FF_00FF_00FF_00FF;
        let mixed = <u64 as Lane>::select(mask, a, b);
        assert_eq!(mixed, (a & mask) | (b & !mask));
    }

    #[test]
    fn pack_matches_predicate() {
        let w: u64 = pack(64, |i| i % 3 == 0);
        for i in 0..64 {
            assert_eq!(w & <u64 as Lane>::bit(i) != 0, i % 3 == 0);
        }
        // Partial pack leaves the tail clear.
        let tail: u64 = pack(10, |_| true);
        assert_eq!(tail, 0x3FF);
    }

    #[test]
    fn popcount_reduce_matches_sum() {
        let words: Vec<u64> = vec![0, u64::MAX, 0x0F0F_0F0F_0F0F_0F0F];
        assert_eq!(popcount_reduce(&words), 96);
        let wide: Vec<u128> = vec![u128::MAX, 1];
        assert_eq!(popcount_reduce(&wide), 129);
    }

    #[test]
    fn transpose_kats_u64() {
        // Identity matrix is its own transpose.
        let mut id: Vec<u64> = (0..64).map(|r| 1u64 << r).collect();
        let before = id.clone();
        transpose(&mut id);
        assert_eq!(id, before);
        // A single set bit moves to its mirrored coordinate.
        let mut one = vec![0u64; 64];
        one[3] = 1 << 41;
        transpose(&mut one);
        let mut expect = vec![0u64; 64];
        expect[41] = 1 << 3;
        assert_eq!(one, expect);
        // Row r all-ones becomes column r.
        let mut rows = vec![0u64; 64];
        rows[7] = u64::MAX;
        transpose(&mut rows);
        assert!(rows.iter().all(|&w| w == 1 << 7));
    }

    #[test]
    fn transpose_matches_naive_and_round_trips() {
        let mut rng = Rng64::seed_from_u64(0x1A4E5);
        for _ in 0..50 {
            let m: Vec<u64> = (0..64).map(|_| rng.gen()).collect();
            let mut fast = m.clone();
            transpose(&mut fast);
            assert_eq!(fast, naive_transpose(&m));
            transpose(&mut fast);
            assert_eq!(fast, m, "transpose must be an involution");
        }
    }

    #[test]
    fn transpose_matches_naive_u128() {
        let mut rng = Rng64::seed_from_u64(0x1A4E6);
        for _ in 0..10 {
            let m: Vec<u128> = (0..128)
                .map(|_| (rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128)
                .collect();
            let mut fast = m.clone();
            transpose(&mut fast);
            assert_eq!(fast, naive_transpose(&m));
            transpose(&mut fast);
            assert_eq!(fast, m);
        }
    }

    #[test]
    fn transpose_preserves_popcount() {
        let mut rng = Rng64::seed_from_u64(9);
        let m: Vec<u64> = (0..64).map(|_| rng.gen()).collect();
        let mut t = m.clone();
        transpose(&mut t);
        assert_eq!(popcount_reduce(&m), popcount_reduce(&t));
        // Column counts become row counts.
        for c in 0..64u32 {
            let col = m
                .iter()
                .filter(|&&w| w & <u64 as Lane>::bit(c) != 0)
                .count() as u32;
            assert_eq!(col, t[c as usize].popcount());
        }
    }

    #[test]
    #[should_panic(expected = "square matrix")]
    fn transpose_rejects_non_square() {
        let mut m = vec![0u64; 63];
        transpose(&mut m);
    }
}
