//! Live telemetry endpoint: a tiny in-process HTTP/1.0 server.
//!
//! Long fleet runs were a black box while executing — every obs artifact
//! materialized only after exit. [`ObsServer`] turns the process into
//! something an operator (or CI) can interrogate *during* the run over
//! plain `std::net::TcpListener`, no dependencies:
//!
//! | Route       | Payload                                                        |
//! |-------------|----------------------------------------------------------------|
//! | `/health`   | JSON liveness: uptime, dropped events, flight wraparound       |
//! | `/metrics`  | Prometheus text exposition from [`crate::export::prometheus_text`] |
//! | `/progress` | The latest document published via [`publish_progress`]         |
//! | `/flight`   | Flight-recorder snapshot as the merged-trace JSON schema       |
//! | `/quit`     | Requests shutdown (the owner polls [`ObsServer::quit_requested`]) |
//!
//! The server is opt-in (`--serve-obs <port>` / `RF_OBS_ADDR` through the
//! bench harness) and owns one accept thread; each request is answered
//! inline, which is plenty for a polling operator and keeps the worker
//! pool untouched. `/progress` is a publish/poll seam rather than a
//! callback into the simulator: the run loop pushes a fresh JSON document
//! at every epoch boundary ([`publish_progress`]) and the endpoint serves
//! the newest one, so `util` never needs to know what a fleet is.
//!
//! Binding port 0 lets the OS pick a free port — the bound address is
//! returned by [`ObsServer::addr`] and, when `RF_OBS_ADDR_FILE` names a
//! path, written there atomically so a second process (the CI smoke gate)
//! can discover it without racing.

use crate::export;
use crate::flight;
use crate::json::Value;
use crate::obs;
use crate::persist::atomic_write;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

static PROGRESS: OnceLock<Mutex<Option<Value>>> = OnceLock::new();

fn progress_slot() -> &'static Mutex<Option<Value>> {
    PROGRESS.get_or_init(|| Mutex::new(None))
}

/// Publishes the document `/progress` should serve from now on. The run
/// loop calls this at every epoch boundary; publishing replaces, so the
/// endpoint always answers with the newest state.
pub fn publish_progress(doc: Value) {
    *progress_slot().lock().expect("progress slot") = Some(doc);
}

/// The latest published progress document, or `{"status": "idle"}` when
/// nothing has been published yet.
pub fn progress() -> Value {
    progress_slot()
        .lock()
        .expect("progress slot")
        .clone()
        .unwrap_or_else(|| Value::object([("status", Value::from("idle"))]))
}

/// Expands an address spec to something bindable: a bare port (`"8080"`,
/// `"0"`) becomes `127.0.0.1:<port>`; anything containing `:` is used
/// verbatim.
pub fn resolve_addr(spec: &str) -> String {
    if spec.contains(':') {
        spec.to_string()
    } else {
        format!("127.0.0.1:{spec}")
    }
}

/// A running telemetry endpoint. Dropping (or [`ObsServer::stop`])
/// shuts the accept thread down cleanly.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    quit: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (see [`resolve_addr`] — port 0 asks the OS for a free
    /// port), writes the bound address to `RF_OBS_ADDR_FILE` if that is
    /// set, and starts the accept thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (address in use, permission) unchanged.
    pub fn start(addr: &str) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(resolve_addr(addr))?;
        let local = listener.local_addr()?;
        if let Ok(path) = std::env::var("RF_OBS_ADDR_FILE") {
            if let Err(e) = atomic_write(std::path::Path::new(&path), &format!("{local}\n")) {
                eprintln!("RF_OBS_ADDR_FILE not written: {e}");
            }
        }
        let stop = Arc::new(AtomicBool::new(false));
        let quit = Arc::new(AtomicBool::new(false));
        let started = Instant::now();
        let (stop_in_thread, quit_in_thread) = (stop.clone(), quit.clone());
        let handle = std::thread::Builder::new()
            .name("rf-obs-serve".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_in_thread.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        handle_conn(stream, &quit_in_thread, started);
                    }
                }
            })?;
        Ok(ObsServer {
            addr: local,
            stop,
            quit,
            handle: Some(handle),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a client has requested shutdown via `GET /quit`. The
    /// process owning the server polls this while lingering after its
    /// work finishes, so CI can end a smoke run deterministically.
    pub fn quit_requested(&self) -> bool {
        self.quit.load(Ordering::Relaxed)
    }

    /// Stops the accept thread and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with one throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = handle.join();
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Hard cap on the request head: nothing a poller legitimately sends
/// comes anywhere near this, so anything longer is garbage or abuse and
/// is answered `400` without buffering more.
const MAX_HEAD_BYTES: usize = 8192;

fn handle_conn(mut stream: TcpStream, quit: &AtomicBool, started: Instant) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    // Read until the end of the request head; only the request line
    // matters — every route is a body-less GET. The read is bounded: a
    // head that exceeds [`MAX_HEAD_BYTES`], times out, or whose
    // connection closes before the `\r\n\r\n` terminator is a malformed
    // request, answered 400 rather than parsed on a partial line.
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let mut complete = false;
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&chunk[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") {
                    complete = true;
                    break;
                }
                if head.len() > MAX_HEAD_BYTES {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let bad_request = |reason: &str| {
        (
            "400 Bad Request",
            "text/plain; charset=utf-8",
            format!("{reason}\n"),
        )
    };
    let request_line = String::from_utf8_lossy(&head)
        .lines()
        .next()
        .unwrap_or_default()
        .to_string();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next(), parts.next());
    let (status, content_type, body) = if !complete {
        if head.len() > MAX_HEAD_BYTES {
            bad_request("request head exceeds 8192 bytes")
        } else {
            bad_request("request head ended before the blank-line terminator")
        }
    } else if method.is_none() || path.is_none() {
        bad_request("malformed request line (expected `METHOD PATH ...`)")
    } else if method != Some("GET") {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        )
    } else {
        let path = path.expect("checked above");
        match path {
            "/health" => {
                let health = Value::object([
                    ("status", Value::from("ok")),
                    (
                        "uptime_ms",
                        Value::from(started.elapsed().as_millis() as u64),
                    ),
                    ("dropped_events", Value::from(obs::dropped_events())),
                    ("flight_overwritten", Value::from(flight::overwritten())),
                ]);
                ("200 OK", "application/json", health.to_pretty())
            }
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                export::prometheus_text(),
            ),
            "/progress" => ("200 OK", "application/json", progress().to_pretty()),
            "/flight" => (
                "200 OK",
                "application/json",
                export::chrome_trace(&flight::snapshot()).to_pretty(),
            ),
            "/quit" => {
                quit.store(true, Ordering::Relaxed);
                (
                    "200 OK",
                    "application/json",
                    Value::object([("status", Value::from("quitting"))]).to_pretty(),
                )
            }
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                format!("no route {path}; try /health /metrics /progress /flight /quit\n"),
            ),
        }
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
            .expect("send request");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read response");
        out
    }

    /// Sends raw bytes (optionally closing the write half early) and
    /// returns whatever the server answers.
    fn raw_request(addr: SocketAddr, bytes: &[u8], close_write: bool) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(bytes).expect("send bytes");
        if close_write {
            stream
                .shutdown(std::net::Shutdown::Write)
                .expect("half-close");
        }
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        out
    }

    #[test]
    fn malformed_requests_get_400_not_a_panic() {
        let server = ObsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.addr();

        // Partial read: the client gives up mid-request-line.
        let partial = raw_request(addr, b"GET /hea", true);
        assert!(partial.starts_with("HTTP/1.0 400"), "partial: {partial}");
        assert!(partial.contains("terminator"), "partial: {partial}");

        // Empty request: connect and immediately close.
        let empty = raw_request(addr, b"", true);
        assert!(empty.starts_with("HTTP/1.0 400"), "empty: {empty}");

        // Garbage bytes with a terminated head but no parseable
        // `METHOD PATH` pair.
        let garbage = raw_request(addr, b"\xff\xfe\x00\x01garbage\r\n\r\n", false);
        assert!(garbage.starts_with("HTTP/1.0 400"), "garbage: {garbage}");

        // Oversized head: more than the cap without a terminator.
        let oversized = raw_request(addr, &vec![b'A'; MAX_HEAD_BYTES + 512], false);
        assert!(
            oversized.starts_with("HTTP/1.0 400"),
            "oversized: {oversized}"
        );
        assert!(oversized.contains("8192"), "oversized: {oversized}");

        // Non-GET on a real route: still 405, not 400.
        let post = raw_request(addr, b"POST /health HTTP/1.0\r\n\r\n", false);
        assert!(post.starts_with("HTTP/1.0 405"), "post: {post}");

        // And a well-formed GET for a missing route is still a 404 —
        // the hardening must not break ordinary dispatch.
        let missing = raw_request(addr, b"GET /no/such/route HTTP/1.0\r\n\r\n", false);
        assert!(missing.starts_with("HTTP/1.0 404"), "missing: {missing}");

        server.stop();
    }

    #[test]
    fn resolve_addr_expands_bare_ports() {
        assert_eq!(resolve_addr("8080"), "127.0.0.1:8080");
        assert_eq!(resolve_addr("0"), "127.0.0.1:0");
        assert_eq!(resolve_addr("0.0.0.0:9100"), "0.0.0.0:9100");
    }

    #[test]
    fn routes_answer_and_quit_is_observable() {
        let _serial = obs::exclusive();
        obs::reset();
        obs::set_metrics_enabled(true);
        obs::counter("servetest.requests").add(3);
        {
            let _scope = obs::scope(4, 0);
            let _span = obs::span("servetest.work_ns");
        }
        publish_progress(Value::object([
            ("status", Value::from("running")),
            ("epoch", Value::from(7u64)),
        ]));
        let server = ObsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.addr();

        let health = http_get(addr, "/health");
        assert!(health.starts_with("HTTP/1.0 200"), "health: {health}");
        assert!(health.contains("\"status\": \"ok\""), "health: {health}");

        let metrics = http_get(addr, "/metrics");
        assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");
        assert!(metrics.contains("servetest_requests 3"), "{metrics}");

        let progress = http_get(addr, "/progress");
        assert!(progress.contains("\"epoch\": 7"), "progress: {progress}");

        let flight = http_get(addr, "/flight");
        assert!(
            flight.contains("servetest.work_ns") && flight.contains("\"cat\": \"obs.span\""),
            "flight: {flight}"
        );

        let missing = http_get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"), "missing: {missing}");

        assert!(!server.quit_requested());
        let quit = http_get(addr, "/quit");
        assert!(quit.contains("quitting"), "quit: {quit}");
        assert!(server.quit_requested());
        server.stop();

        obs::set_metrics_enabled(false);
        obs::reset();
        *progress_slot().lock().unwrap() = None;
    }
}
