//! A fast, deterministic hasher for hot-loop hash maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is keyed and
//! DoS-resistant, which the Monte Carlo kernels neither need nor can
//! afford: repair planning inserts hundreds of `u64` line keys per faulty
//! node, and SipHash dominates the profile. [`FxHasher`] is the
//! multiply-fold hasher used by rustc (public domain algorithm): one
//! multiply and a rotate per word, deterministic across runs and
//! platforms of equal word size.
//!
//! Determinism matters here beyond speed: iteration order of these maps
//! must never leak into simulation results (the planners only iterate for
//! aggregate counts), but a fixed hasher also keeps any accidental
//! order-dependence reproducible instead of flaky.
//!
//! # Examples
//!
//! ```
//! use relaxfault_util::hash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, u32> = FxHashMap::default();
//! m.insert(42, 1);
//! assert_eq!(m.get(&42), Some(&1));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-style multiply-fold hasher. Not cryptographic; do not use
/// where an attacker controls the keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// The odd multiplier from the original Firefox/rustc implementation
/// (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_one<T: std::hash::Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(12345u64), hash_one(12345u64));
        assert_ne!(hash_one(12345u64), hash_one(12346u64));
    }

    #[test]
    fn byte_tail_handling() {
        // write() must fold trailing bytes, not drop them.
        assert_ne!(hash_one([1u8, 2, 3]), hash_one([1u8, 2, 4]));
        assert_ne!(hash_one([1u8; 9].as_slice()), hash_one([1u8; 8].as_slice()));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 2), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(500, 1000)), Some(&500));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000u64 {
            assert!(s.insert(i * 7));
            assert!(!s.insert(i * 7));
        }
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sequential u64 keys (the common line-key pattern) should not
        // collide in the low bits the table indexes with.
        let mut low: FxHashSet<u64> = FxHashSet::default();
        for i in 0..256u64 {
            low.insert(hash_one(i) >> 56);
        }
        assert!(low.len() > 64, "only {} distinct high bytes", low.len());
    }
}
