//! Structured observability: event tracing, metrics, and span timing.
//!
//! The Monte Carlo engine and the performance simulator run for minutes
//! across threads; this module is the zero-dependency substrate that makes
//! those runs inspectable without making them slower or nondeterministic:
//!
//! * **Event tracing** — leveled, key-value events emitted through the
//!   [`trace_event!`](crate::trace_event) macro into per-thread buffers.
//!   Events carry a `(trial, group)` scope key plus a per-scope sequence
//!   number, so [`drain_events`] can merge the buffers into a stream whose
//!   order depends only on the work, never on which worker thread ran it:
//!   the rendered stream is byte-identical across thread counts.
//! * **Metrics** — a process-wide registry of named [`Counter`]s,
//!   [`Gauge`]s, and log-linear [`Histogram`]s (p50/p95/p99/max) updated
//!   with relaxed atomics. Sums commute, so metrics stay exact under any
//!   thread schedule.
//! * **Span timing** — [`Histogram::start_span`] returns an RAII timer
//!   that records elapsed nanoseconds on drop, feeding the same
//!   percentile machinery the bench harness in [`crate::timing`] prints.
//! * **Sinks** — [`render_text`] for humans, [`events_to_json`] and
//!   [`snapshot`]/[`write_snapshot`] for machines (via [`crate::json`],
//!   written under `results/obs/<run>.json`).
//! * **Run manifests** — every snapshot embeds a [`Manifest`] (git SHA,
//!   cargo profile, thread count, RNG seeds, scenario config hash,
//!   wall-clock from an injectable clock) and [`write_snapshot`] appends
//!   the run to the `results/runs/index.json` registry atomically, so any
//!   two runs can be compared long after the processes that produced them
//!   are gone (the `obs_diff` reporter consumes exactly this metadata).
//!   Simulators publish their parameters through [`note_run_context`];
//!   bench harnesses publish medians through [`record_bench`]. External
//!   tool formats (Perfetto traces, Prometheus exposition) are produced by
//!   [`crate::export`] from [`drain_events`] and [`metric_snaps`].
//!
//! # Gating and cost when disabled
//!
//! Everything is off by default. `RF_TRACE=<filter>` (for example
//! `RF_TRACE=relsim=debug,perfsim=info` or just `RF_TRACE=debug`) enables
//! tracing and metrics; `RF_OBS=on` enables metrics alone; `RF_OBS=off` is
//! a kill switch that wins over everything, including programmatic
//! enables ([`set_force_off`] is the `--quiet` flag's hook). The disabled
//! paths compile down to one relaxed atomic load and a branch — the
//! `node_eval` bench guards that this taxes the hot loop by well under 1%.
//!
//! # Determinism contract
//!
//! Scoped events (emitted inside a [`scope`] guard) are merged in
//! `(trial, group, seq)` order. Unscoped events sort after all scoped
//! ones, tie-broken by their rendered text. As long as per-scope emission
//! is deterministic — which it is whenever the traced code is
//! deterministic in `(seed, trial, group)` — the merged stream is
//! reproducible at any thread count, provided no events were dropped
//! (per-thread buffers are bounded; [`dropped_events`] reports losses and
//! the snapshot records them).
//!
//! # Examples
//!
//! ```
//! use relaxfault_util::obs::{self, Level};
//! use relaxfault_util::trace_event;
//!
//! let _serial = obs::exclusive(); // tests share the process-wide registry
//! obs::reset();
//! obs::set_filter("demo=debug").unwrap();
//! obs::set_metrics_enabled(true);
//!
//! let faults = obs::counter("demo.faults");
//! {
//!     let _scope = obs::scope(7, 0);
//!     faults.add(3);
//!     trace_event!(target: "demo", Level::Debug, "injected", count = 3u64);
//! }
//! let events = obs::drain_events();
//! assert_eq!(events.len(), 1);
//! assert_eq!(faults.get(), 3);
//! assert!(obs::render_text(&events).contains("injected"));
//! obs::set_filter("").unwrap();
//! obs::set_metrics_enabled(false);
//! ```

use crate::json::Value;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Schema marker shared by every machine-readable artifact this workspace
/// emits (metrics snapshots, the bench tables' JSON mirrors, the run
/// registry, and obs_diff verdicts), so downstream tooling can evolve all
/// of them in lockstep. Version 2 added the embedded [`Manifest`] and the
/// `benches` snapshot section.
pub const SCHEMA_VERSION: u64 = 2;

/// Scope key meaning "not inside any [`scope`] guard".
pub const UNSCOPED: u64 = u64::MAX;

/// Trace verbosity, ordered so that a numerically higher level is chattier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable problems.
    Error = 1,
    /// Suspicious but survivable conditions.
    Warn = 2,
    /// Run lifecycle landmarks.
    Info = 3,
    /// Per-trial decisions.
    Debug = 4,
    /// Per-fault / per-access detail.
    Trace = 5,
}

impl Level {
    /// Lower-case name, as accepted by the `RF_TRACE` filter.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a filter level; `"off"` is `Some(None)`, unknown is `None`.
    fn parse(s: &str) -> Option<Option<Level>> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Env filter
// ---------------------------------------------------------------------------

/// A parsed `RF_TRACE` directive list: an optional default level plus
/// per-target overrides (`relsim=debug,perfsim=info`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Filter {
    /// Level for targets with no matching directive (0 = off).
    default: u8,
    /// `(target, level)` directives, in spec order.
    targets: Vec<(String, u8)>,
}

impl Filter {
    /// Parses a comma-separated directive list. Each item is either a bare
    /// level (`debug`, setting the default) or `target=level`. Whitespace
    /// around items is ignored; the empty string turns everything off.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed directive.
    pub fn parse(spec: &str) -> Result<Filter, String> {
        let mut f = Filter::default();
        for raw in spec.split(',') {
            let item = raw.trim();
            if item.is_empty() {
                continue;
            }
            if let Some((target, level)) = item.split_once('=') {
                let (target, level) = (target.trim(), level.trim());
                if target.is_empty() {
                    return Err(format!("empty target in directive `{item}`"));
                }
                let lvl = Level::parse(level)
                    .ok_or_else(|| format!("unknown level `{level}` in directive `{item}`"))?;
                f.targets
                    .push((target.to_string(), lvl.map_or(0, |l| l as u8)));
            } else {
                let lvl = Level::parse(item).ok_or_else(|| {
                    format!("unknown directive `{item}` (want level or target=level)")
                })?;
                f.default = lvl.map_or(0, |l| l as u8);
            }
        }
        Ok(f)
    }

    /// The effective level for `target`: the longest matching directive
    /// wins (a directive matches its exact target or any descendant
    /// separated by `::`, `:` or `.`); among equal lengths the later one
    /// wins; otherwise the default applies.
    pub fn level_for(&self, target: &str) -> u8 {
        let mut best: Option<(usize, u8)> = None;
        for (t, lvl) in &self.targets {
            let matches = target == t
                || (target.starts_with(t)
                    && matches!(target.as_bytes().get(t.len()), Some(b':') | Some(b'.')));
            if matches && best.is_none_or(|(len, _)| t.len() >= len) {
                best = Some((t.len(), *lvl));
            }
        }
        best.map_or(self.default, |(_, lvl)| lvl)
    }

    /// The chattiest level any target can reach — the fast-path gate.
    fn max_level(&self) -> u8 {
        self.targets
            .iter()
            .map(|(_, l)| *l)
            .fold(self.default, u8::max)
    }

    /// Canonical spec string; `Filter::parse(f.render())` reproduces `f`.
    pub fn render(&self) -> String {
        let name = |l: u8| match l {
            0 => "off",
            1 => "error",
            2 => "warn",
            3 => "info",
            4 => "debug",
            _ => "trace",
        };
        let mut parts: Vec<String> = vec![name(self.default).to_string()];
        for (t, l) in &self.targets {
            parts.push(format!("{t}={}", name(*l)));
        }
        parts.join(",")
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One key-value payload entry of an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

macro_rules! field_from {
    ($($ty:ty => $variant:ident as $cast:ty),* $(,)?) => {
        $(impl From<$ty> for FieldValue {
            fn from(v: $ty) -> Self {
                FieldValue::$variant(v as $cast)
            }
        })*
    };
}
field_from!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64, i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64,
    i64 => I64 as i64, f32 => F64 as f64, f64 => F64 as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl FieldValue {
    pub(crate) fn to_json(&self) -> Value {
        match self {
            FieldValue::U64(v) => Value::Number(*v as f64),
            FieldValue::I64(v) => Value::Number(*v as f64),
            FieldValue::F64(v) => Value::Number(*v),
            FieldValue::Bool(v) => Value::Bool(*v),
            FieldValue::Str(v) => Value::String(v.clone()),
        }
    }
}

/// One traced occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Subsystem that emitted the event (the filter key).
    pub target: &'static str,
    /// Verbosity the event was emitted at.
    pub level: Level,
    /// Event name.
    pub name: &'static str,
    /// Scope trial index ([`UNSCOPED`] outside a [`scope`] guard).
    pub trial: u64,
    /// Scope group index ([`UNSCOPED`] outside a [`scope`] guard).
    pub group: u64,
    /// Emission index within the scope (the per-scope merge key).
    pub seq: u64,
    /// Key-value payload, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// The deterministic one-line rendering used by [`render_text`].
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut line = format!("[{} {}] {}", self.level.as_str(), self.target, self.name);
        if self.trial != UNSCOPED {
            let _ = write!(line, " trial={} group={}", self.trial, self.group);
        }
        for (k, v) in &self.fields {
            let _ = write!(line, " {k}={v}");
        }
        line
    }
}

/// Emits a leveled key-value trace event, free when the target/level is
/// filtered out (one relaxed load and a branch).
///
/// ```
/// use relaxfault_util::obs::{self, Level};
/// use relaxfault_util::trace_event;
/// trace_event!(target: "docs", Level::Info, "example", answer = 42u64, ok = true);
/// ```
#[macro_export]
macro_rules! trace_event {
    (target: $target:expr, $level:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::obs::enabled($target, $level) {
            $crate::obs::emit(
                $target,
                $level,
                $name,
                vec![$((stringify!($key), $crate::obs::FieldValue::from($val))),*],
            );
        }
    };
}

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

struct ThreadBuf {
    events: Mutex<Vec<Event>>,
}

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistInner>),
}

struct Global {
    /// Kill switch (`RF_OBS=off` / `--quiet`): wins over everything.
    force_off: AtomicBool,
    /// Fast tracing gate: max level any target can reach (0 = all off).
    max_level: AtomicU8,
    /// Fast metrics gate.
    metrics_on: AtomicBool,
    /// Whether metrics were requested (survives force-off toggles).
    metrics_wanted: AtomicBool,
    filter: Mutex<Filter>,
    buffers: Mutex<Vec<Arc<ThreadBuf>>>,
    metrics: Mutex<Vec<(String, Metric)>>,
    dropped: AtomicU64,
    buf_cap: usize,
    /// Simulator-published run parameters folded into the [`Manifest`].
    run_ctx: Mutex<RunContext>,
    /// Bench medians published by `timing::Harness` for the snapshot.
    benches: Mutex<Vec<BenchRecord>>,
    /// Injected wall clock (tests pin it; `None` = `SystemTime::now`).
    clock_ms: Mutex<Option<fn() -> u64>>,
    /// Serializes appends to the run registry within this process.
    index_lock: Mutex<()>,
    /// Serializes tests that reconfigure the process-wide state.
    test_lock: Mutex<()>,
}

#[derive(Default)]
struct RunContext {
    seeds: Vec<u64>,
    threads: u64,
    config_hash: u64,
    sim_runs: u64,
    epochs: u64,
    shards: u64,
}

impl Global {
    fn recompute_gates(&self) {
        let off = self.force_off.load(Ordering::Relaxed);
        let max = if off {
            0
        } else {
            self.filter.lock().expect("filter lock").max_level()
        };
        self.max_level.store(max, Ordering::Relaxed);
        let metrics = !off && (self.metrics_wanted.load(Ordering::Relaxed) || max > 0);
        self.metrics_on.store(metrics, Ordering::Relaxed);
    }
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let force_off = std::env::var("RF_OBS")
            .map(|v| matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"))
            .unwrap_or(false);
        let metrics_wanted = std::env::var("RF_OBS")
            .map(|v| matches!(v.to_ascii_lowercase().as_str(), "on" | "1" | "true"))
            .unwrap_or(false);
        let filter = std::env::var("RF_TRACE")
            .ok()
            .and_then(|spec| match Filter::parse(&spec) {
                Ok(f) => Some(f),
                Err(e) => {
                    eprintln!("RF_TRACE ignored: {e}");
                    None
                }
            })
            .unwrap_or_default();
        let buf_cap = std::env::var("RF_TRACE_BUF")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1 << 16);
        let g = Global {
            force_off: AtomicBool::new(force_off),
            max_level: AtomicU8::new(0),
            metrics_on: AtomicBool::new(false),
            metrics_wanted: AtomicBool::new(metrics_wanted),
            filter: Mutex::new(filter),
            buffers: Mutex::new(Vec::new()),
            metrics: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            buf_cap,
            run_ctx: Mutex::new(RunContext::default()),
            benches: Mutex::new(Vec::new()),
            clock_ms: Mutex::new(None),
            index_lock: Mutex::new(()),
            test_lock: Mutex::new(()),
        };
        g.recompute_gates();
        g
    })
}

thread_local! {
    static SCOPE: Cell<(u64, u64, u64)> = const { Cell::new((UNSCOPED, UNSCOPED, 0)) };
    static LOCAL_BUF: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
}

/// Whether an event at `level` for `target` would be recorded.
#[inline]
pub fn enabled(target: &str, level: Level) -> bool {
    let g = global();
    if (level as u8) > g.max_level.load(Ordering::Relaxed) {
        return false;
    }
    g.filter.lock().expect("filter lock").level_for(target) >= level as u8
}

/// Whether metric updates are currently recorded.
#[inline]
pub fn metrics_enabled() -> bool {
    global().metrics_on.load(Ordering::Relaxed)
}

/// Installs a new trace filter (the programmatic `RF_TRACE`). Enabling any
/// tracing also enables metrics, so traced runs always have a snapshot.
///
/// # Errors
///
/// Returns the parse error message for a malformed spec; the previous
/// filter stays installed.
pub fn set_filter(spec: &str) -> Result<(), String> {
    let f = Filter::parse(spec)?;
    let g = global();
    *g.filter.lock().expect("filter lock") = f;
    g.recompute_gates();
    Ok(())
}

/// Requests (or drops) metrics collection, independent of tracing.
pub fn set_metrics_enabled(on: bool) {
    let g = global();
    g.metrics_wanted.store(on, Ordering::Relaxed);
    g.recompute_gates();
}

/// The kill switch behind `RF_OBS=off` and the bench binaries' `--quiet`:
/// while set, tracing and metrics are off regardless of filters.
pub fn set_force_off(off: bool) {
    let g = global();
    g.force_off.store(off, Ordering::Relaxed);
    g.recompute_gates();
}

/// Whether the kill switch is currently set (see [`set_force_off`]).
/// The bench harness consults this before installing crash-dump hooks so
/// `--quiet` runs stay artifact-free.
pub fn is_force_off() -> bool {
    global().force_off.load(Ordering::Relaxed)
}

/// Events discarded because a per-thread buffer was full (determinism of
/// the merged stream is only guaranteed when this is zero).
pub fn dropped_events() -> u64 {
    global().dropped.load(Ordering::Relaxed)
}

/// Serializes tests that reconfigure the process-wide registry. Production
/// code never needs this; concurrent emission is always safe.
pub fn exclusive() -> MutexGuard<'static, ()> {
    global()
        .test_lock
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------------
// Scopes and emission
// ---------------------------------------------------------------------------

/// Restores the previous scope on drop.
pub struct ScopeGuard {
    prev: (u64, u64, u64),
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|s| s.set(self.prev));
    }
}

/// Enters the deterministic merge scope `(trial, group)`: events emitted
/// until the guard drops carry this key and a fresh sequence counter.
pub fn scope(trial: u64, group: u64) -> ScopeGuard {
    let prev = SCOPE.with(|s| s.replace((trial, group, 0)));
    ScopeGuard { prev }
}

/// Records an event unconditionally — call through
/// [`trace_event!`](crate::trace_event), which applies the filter first.
pub fn emit(
    target: &'static str,
    level: Level,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
) {
    let g = global();
    let (trial, group, seq) = SCOPE.with(|s| {
        let (t, gr, seq) = s.get();
        s.set((t, gr, seq + 1));
        (t, gr, seq)
    });
    let event = Event {
        target,
        level,
        name,
        trial,
        group,
        seq,
        fields,
    };
    if crate::flight::enabled() {
        crate::flight::record(event.clone());
    }
    LOCAL_BUF.with(|cell| {
        let mut slot = cell.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let buf = Arc::new(ThreadBuf {
                events: Mutex::new(Vec::new()),
            });
            g.buffers.lock().expect("buffer registry").push(buf.clone());
            buf
        });
        let mut events = buf.events.lock().expect("thread buffer");
        if events.len() < g.buf_cap {
            events.push(event);
        } else {
            g.dropped.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Takes every buffered event and merges them into the deterministic
/// stream: scoped events ordered by `(trial, group, seq)`, unscoped events
/// after them, ties broken by rendered text. Buffers of exited threads are
/// unregistered once drained.
pub fn drain_events() -> Vec<Event> {
    let g = global();
    let mut all: Vec<Event> = Vec::new();
    {
        let mut buffers = g.buffers.lock().expect("buffer registry");
        for buf in buffers.iter() {
            all.append(&mut buf.events.lock().expect("thread buffer"));
        }
        buffers.retain(|b| Arc::strong_count(b) > 1);
    }
    sort_merged(all)
}

/// Sorts events into the canonical merged order: scoped events by
/// `(trial, group, seq)`, unscoped events after them, ties broken by
/// rendered text. [`drain_events`] and [`crate::flight::snapshot`] share
/// this so both streams obey the same determinism contract.
pub fn sort_merged(events: Vec<Event>) -> Vec<Event> {
    let mut keyed: Vec<(Event, String)> = events
        .into_iter()
        .map(|e| {
            let line = e.render();
            (e, line)
        })
        .collect();
    keyed.sort_by(|(a, ra), (b, rb)| {
        (a.trial, a.group, a.seq, ra.as_str()).cmp(&(b.trial, b.group, b.seq, rb.as_str()))
    });
    keyed.into_iter().map(|(e, _)| e).collect()
}

/// Renders a drained stream as one line per event (the human sink).
pub fn render_text(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.render());
        out.push('\n');
    }
    out
}

/// Renders a drained stream as a JSON array (the machine sink).
pub fn events_to_json(events: &[Event]) -> Value {
    Value::Array(
        events
            .iter()
            .map(|e| {
                let mut pairs: Vec<(String, Value)> = vec![
                    ("target".into(), Value::from(e.target)),
                    ("level".into(), Value::from(e.level.as_str())),
                    ("name".into(), Value::from(e.name)),
                ];
                if e.trial != UNSCOPED {
                    pairs.push(("trial".into(), Value::from(e.trial)));
                    pairs.push(("group".into(), Value::from(e.group)));
                }
                let fields: Vec<(String, Value)> = e
                    .fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_json()))
                    .collect();
                pairs.push(("fields".into(), Value::Object(fields)));
                Value::Object(pairs)
            })
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// A monotonically increasing named count.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` (no-op while metrics are disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if metrics_enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A named last-write-wins value.
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the value (no-op while metrics are disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if metrics_enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

const HIST_BUCKETS: usize = 256;
/// Values below this are bucketed exactly.
const HIST_LINEAR_MAX: u64 = 16;

struct HistInner {
    /// Registered name, interned for the process lifetime so span events
    /// and profiler frames can carry it as a `&'static str`.
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

/// Returns the log-linear bucket index of `v`: exact below
/// [`HIST_LINEAR_MAX`], then four sub-buckets per power of two (≤ 25%
/// relative quantization error).
pub fn bucket_index(v: u64) -> usize {
    if v < HIST_LINEAR_MAX {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as usize; // >= 4
    let sub = ((v >> (e - 2)) & 3) as usize;
    16 + (e - 4) * 4 + sub
}

/// The smallest value mapping to bucket `idx` (the percentile estimate).
pub fn bucket_floor(idx: usize) -> u64 {
    if idx < HIST_LINEAR_MAX as usize {
        return idx as u64;
    }
    let o = idx - 16;
    let e = o / 4 + 4;
    let s = (o % 4) as u64;
    (1u64 << e) + (s << (e - 2))
}

/// A named log-linear histogram with percentile summaries.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Histogram {
    /// Records one value (no-op while metrics are disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !metrics_enabled() {
            return;
        }
        let h = &self.inner;
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
        h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (exact, not quantized).
    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Nearest-rank percentile (`p` in 0..=100), reported as the floor of
    /// the bucket holding that rank; 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p / 100.0 * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (idx, bucket) in self.inner.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return bucket_floor(idx);
            }
        }
        self.max()
    }

    /// The name this histogram was registered under (interned).
    pub fn name(&self) -> &'static str {
        self.inner.name
    }

    /// Starts an RAII timer that records elapsed nanoseconds into this
    /// histogram on drop. Free (no clock read) while metrics are disabled
    /// and the profiler is idle — both gates are one relaxed load each.
    #[inline]
    pub fn start_span(&self) -> SpanTimer {
        SpanTimer {
            hist: metrics_enabled().then(|| (self.clone(), Instant::now())),
            pushed: crate::profiler::enter(self.inner.name),
        }
    }
}

/// Scoped timer from [`Histogram::start_span`] / [`span`].
pub struct SpanTimer {
    hist: Option<(Histogram, Instant)>,
    /// Whether this span was pushed onto the profiler's stack.
    pushed: bool,
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.hist.take() {
            let ns = start.elapsed().as_nanos() as u64;
            hist.record(ns);
            if crate::flight::enabled() {
                record_span_event(hist.name(), ns);
            }
        }
        if self.pushed {
            crate::profiler::exit();
        }
    }
}

/// Target carried by the synthetic span-completion events the flight
/// recorder captures when a [`SpanTimer`] drops (see [`crate::flight`]).
pub const SPAN_TARGET: &str = "obs.span";

/// Feeds one completed span into the flight recorder as a synthetic event
/// keyed like any other: it consumes a sequence number from the current
/// scope, so drained flight streams order span completions deterministically
/// relative to the trace events around them.
fn record_span_event(name: &'static str, ns: u64) {
    let (trial, group, seq) = SCOPE.with(|s| {
        let (t, gr, seq) = s.get();
        s.set((t, gr, seq + 1));
        (t, gr, seq)
    });
    crate::flight::record(Event {
        target: SPAN_TARGET,
        level: Level::Debug,
        name,
        trial,
        group,
        seq,
        fields: vec![("ns", FieldValue::U64(ns))],
    });
}

fn with_registry<T>(
    name: &str,
    make: impl FnOnce() -> Metric,
    pick: impl Fn(&Metric) -> Option<T>,
) -> T {
    let mut metrics = global().metrics.lock().expect("metrics registry");
    if let Some((_, m)) = metrics.iter().find(|(n, _)| n == name) {
        return pick(m)
            .unwrap_or_else(|| panic!("metric `{name}` already registered with another type"));
    }
    let m = make();
    let out = pick(&m).expect("freshly made metric matches its own kind");
    metrics.push((name.to_string(), m));
    out
}

/// Gets or creates the counter `name`. Call sites on hot paths should
/// cache the returned handle (it is a cheap [`Arc`] clone).
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric type.
pub fn counter(name: &str) -> Counter {
    with_registry(
        name,
        || Metric::Counter(Arc::new(AtomicU64::new(0))),
        |m| match m {
            Metric::Counter(c) => Some(Counter { cell: c.clone() }),
            _ => None,
        },
    )
}

/// Gets or creates the gauge `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric type.
pub fn gauge(name: &str) -> Gauge {
    with_registry(
        name,
        || Metric::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
        |m| match m {
            Metric::Gauge(g) => Some(Gauge { bits: g.clone() }),
            _ => None,
        },
    )
}

/// Gets or creates the histogram `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric type.
pub fn histogram(name: &str) -> Histogram {
    with_registry(
        name,
        || {
            // Interned for the process lifetime: the registry never drops
            // entries, so leaking the name once per histogram is bounded.
            let interned: &'static str = Box::leak(name.to_string().into_boxed_str());
            Metric::Histogram(Arc::new(HistInner {
                name: interned,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
                buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            }))
        },
        |m| match m {
            Metric::Histogram(h) => Some(Histogram { inner: h.clone() }),
            _ => None,
        },
    )
}

/// Starts a span timer on the histogram `name` (see
/// [`Histogram::start_span`]; hot paths should cache the histogram).
pub fn span(name: &str) -> SpanTimer {
    histogram(name).start_span()
}

// ---------------------------------------------------------------------------
// Run manifests and cross-run context
// ---------------------------------------------------------------------------

/// FNV-1a over a byte string: the workspace's stable config-hash function
/// (manifests record it so two runs can be checked for comparability).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Publishes one simulator run's parameters into the process manifest:
/// the RNG seed, worker thread count, and a hash of the scenario/machine
/// configuration. Call once per run, before or after the work — the
/// manifest accumulates every distinct seed and folds config hashes in
/// call order (the instrumented binaries invoke simulators serially).
pub fn note_run_context(seed: u64, threads: u64, config_hash: u64) {
    let mut ctx = global().run_ctx.lock().expect("run context");
    if !ctx.seeds.contains(&seed) {
        ctx.seeds.push(seed);
    }
    ctx.threads = ctx.threads.max(threads);
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&ctx.config_hash.to_le_bytes());
    bytes[8..].copy_from_slice(&config_hash.to_le_bytes());
    ctx.config_hash = fnv1a(&bytes);
    ctx.sim_runs += 1;
}

/// Publishes a fleet simulation's shape into the process manifest: how
/// many lifetime epochs it stepped through and how many shards the node
/// population was partitioned into. Runs-index entries embed the
/// manifest, so registered fleet runs record both counts. Repeated calls
/// keep the maximum (the instrumented binaries run fleets serially).
pub fn note_fleet_context(epochs: u64, shards: u64) {
    let mut ctx = global().run_ctx.lock().expect("run context");
    ctx.epochs = ctx.epochs.max(epochs);
    ctx.shards = ctx.shards.max(shards);
}

/// Installs (or with `None`, removes) an injected wall clock for
/// [`Manifest::collect`]. Tests pin it so manifests are reproducible.
pub fn set_clock_ms(clock: Option<fn() -> u64>) {
    *global().clock_ms.lock().expect("clock") = clock;
}

/// Milliseconds since the Unix epoch, from the injected clock if one is
/// installed (see [`set_clock_ms`]).
pub fn now_ms() -> u64 {
    let injected = *global().clock_ms.lock().expect("clock");
    match injected {
        Some(f) => f(),
        None => std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
    }
}

/// The commit this binary was built from: `RF_GIT_SHA` if set, otherwise
/// resolved by walking up from the working directory to a `.git/HEAD`
/// (plain file reads — no `git` subprocess), `"unknown"` when neither
/// works.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("RF_GIT_SHA") {
        return sha.trim().to_string();
    }
    let mut dir = match std::env::current_dir() {
        Ok(d) => d,
        Err(_) => return "unknown".into(),
    };
    for _ in 0..6 {
        let head = dir.join(".git/HEAD");
        if let Ok(text) = std::fs::read_to_string(&head) {
            let text = text.trim();
            let Some(reference) = text.strip_prefix("ref: ") else {
                return text.to_string(); // detached HEAD: the SHA itself
            };
            if let Ok(sha) = std::fs::read_to_string(dir.join(".git").join(reference)) {
                return sha.trim().to_string();
            }
            // Ref may only exist packed.
            if let Ok(packed) = std::fs::read_to_string(dir.join(".git/packed-refs")) {
                for line in packed.lines() {
                    if let Some(sha) = line.strip_suffix(reference) {
                        return sha.trim().to_string();
                    }
                }
            }
            return "unknown".into();
        }
        if !dir.pop() {
            break;
        }
    }
    "unknown".into()
}

/// What produced a snapshot: enough metadata to decide whether two runs
/// are comparable (same config and seeds) and to trace a result back to a
/// commit. Embedded in every snapshot and appended to the run registry.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Run name (the snapshot's file stem).
    pub run: String,
    /// Commit SHA the binary was built from (`"unknown"` if unresolvable).
    pub git_sha: String,
    /// Cargo profile: `"release"` or `"debug"`.
    pub profile: &'static str,
    /// Trial-lane mode of the bit-sliced engine (`"scalar"`, `"u64"`,
    /// `"u128"`; see [`crate::lanes::mode`]). Recorded so history series
    /// compare like against like per lane configuration.
    pub lanes: &'static str,
    /// Worker threads the simulators used (0 when none ran).
    pub threads: u64,
    /// Every distinct RNG seed the simulators were given, in first-use order.
    pub seeds: Vec<u64>,
    /// Order-sensitive FNV-1a fold of every simulator configuration.
    pub config_hash: u64,
    /// How many simulator runs contributed to this snapshot.
    pub sim_runs: u64,
    /// Lifetime epochs a fleet simulation stepped through (0 when none
    /// ran); see [`note_fleet_context`].
    pub epochs: u64,
    /// Shards the fleet population was partitioned into (0 when no fleet
    /// ran); see [`note_fleet_context`].
    pub shards: u64,
    /// Wall-clock milliseconds since the epoch, from [`now_ms`].
    pub wall_clock_ms: u64,
}

impl Manifest {
    /// Gathers the manifest for the current process state.
    pub fn collect(run: &str) -> Manifest {
        let ctx = global().run_ctx.lock().expect("run context");
        Manifest {
            run: run.to_string(),
            git_sha: git_sha(),
            profile: if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            },
            lanes: crate::lanes::mode().label(),
            threads: ctx.threads,
            seeds: ctx.seeds.clone(),
            config_hash: ctx.config_hash,
            sim_runs: ctx.sim_runs,
            epochs: ctx.epochs,
            shards: ctx.shards,
            wall_clock_ms: now_ms(),
        }
    }

    /// JSON form. `config_hash` is emitted as a 16-digit hex string — JSON
    /// numbers are doubles and would silently round a 64-bit hash.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("run", Value::from(self.run.as_str())),
            ("git_sha", Value::from(self.git_sha.as_str())),
            ("profile", Value::from(self.profile)),
            ("lanes", Value::from(self.lanes)),
            ("threads", Value::from(self.threads)),
            (
                "seeds",
                Value::Array(self.seeds.iter().map(|&s| Value::from(s)).collect()),
            ),
            (
                "config_hash",
                Value::from(format!("{:016x}", self.config_hash)),
            ),
            ("sim_runs", Value::from(self.sim_runs)),
            ("epochs", Value::from(self.epochs)),
            ("shards", Value::from(self.shards)),
            ("wall_clock_ms", Value::from(self.wall_clock_ms)),
        ])
    }
}

/// One benchmark outcome published by `timing::Harness` (see
/// [`record_bench`]): the snapshot keeps the raw per-batch samples so
/// `obs_diff` can put a confidence interval on the median.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name.
    pub name: String,
    /// Median nanoseconds per iteration across batches.
    pub median_ns: f64,
    /// Iterations per batch after calibration.
    pub iters: u64,
    /// Per-batch nanoseconds per iteration, sorted ascending.
    pub batch_ns: Vec<f64>,
}

/// Publishes a bench median (plus its batch samples) into the snapshot's
/// `benches` section. No-op while metrics are disabled. A repeated name
/// replaces the earlier record.
pub fn record_bench(name: &str, median_ns: f64, iters: u64, batch_ns: &[f64]) {
    if !metrics_enabled() {
        return;
    }
    let mut benches = global().benches.lock().expect("bench records");
    let record = BenchRecord {
        name: name.to_string(),
        median_ns,
        iters,
        batch_ns: batch_ns.to_vec(),
    };
    if let Some(slot) = benches.iter_mut().find(|b| b.name == name) {
        *slot = record;
    } else {
        benches.push(record);
    }
}

/// Every bench record published so far, in publication order.
pub fn bench_records() -> Vec<BenchRecord> {
    global().benches.lock().expect("bench records").clone()
}

/// One metric's current state, for exporters (see [`metric_snaps`]).
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnap {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(f64),
    /// A histogram's totals plus its non-empty buckets.
    Histogram {
        /// Values recorded.
        count: u64,
        /// Sum of recorded values.
        sum: u64,
        /// Largest recorded value (exact).
        max: u64,
        /// `(inclusive upper bound, count)` per non-empty bucket in
        /// ascending order; `None` marks the unbounded last bucket.
        buckets: Vec<(Option<u64>, u64)>,
    },
}

/// Reads every registered metric, sorted by name — the exporter-facing
/// view of the registry (Prometheus exposition is built from exactly
/// this; see [`crate::export::prometheus_text`]).
pub fn metric_snaps() -> Vec<(String, MetricSnap)> {
    let metrics = global().metrics.lock().expect("metrics registry");
    let mut out: Vec<(String, MetricSnap)> = metrics
        .iter()
        .map(|(name, m)| {
            let snap = match m {
                Metric::Counter(c) => MetricSnap::Counter(c.load(Ordering::Relaxed)),
                Metric::Gauge(bits) => {
                    MetricSnap::Gauge(f64::from_bits(bits.load(Ordering::Relaxed)))
                }
                Metric::Histogram(h) => {
                    let buckets = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(idx, b)| {
                            let n = b.load(Ordering::Relaxed);
                            if n == 0 {
                                return None;
                            }
                            let le = (idx + 1 < HIST_BUCKETS).then(|| bucket_floor(idx + 1) - 1);
                            Some((le, n))
                        })
                        .collect();
                    MetricSnap::Histogram {
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                        max: h.max.load(Ordering::Relaxed),
                        buckets,
                    }
                }
            };
            (name.clone(), snap)
        })
        .collect();
    out.sort_by(|(a, _), (b, _)| a.cmp(b));
    out
}

// ---------------------------------------------------------------------------
// Snapshot sink
// ---------------------------------------------------------------------------

/// A machine-readable snapshot of every registered metric, ordered by
/// name so emitted files diff cleanly:
///
/// ```json
/// {"schema_version": 2, "manifest": {...}, "counters": {...},
///  "gauges": {...},
///  "histograms": {"relsim.trial_ns": {"count":…, "p50":…, …}},
///  "benches": {"node_eval": {"median_ns":…, "iters":…, "batch_ns":[…]}},
///  "dropped_events": 0}
/// ```
pub fn snapshot() -> Value {
    snapshot_for_run("")
}

fn snapshot_for_run(run: &str) -> Value {
    let g = global();
    let metrics = g.metrics.lock().expect("metrics registry");
    let mut counters: Vec<(String, Value)> = Vec::new();
    let mut gauges: Vec<(String, Value)> = Vec::new();
    let mut hists: Vec<(String, Value)> = Vec::new();
    for (name, m) in metrics.iter() {
        match m {
            Metric::Counter(c) => {
                counters.push((name.clone(), Value::from(c.load(Ordering::Relaxed))));
            }
            Metric::Gauge(bits) => {
                gauges.push((
                    name.clone(),
                    Value::from(f64::from_bits(bits.load(Ordering::Relaxed))),
                ));
            }
            Metric::Histogram(h) => {
                let hist = Histogram { inner: h.clone() };
                let count = hist.count();
                let mean = if count == 0 {
                    0.0
                } else {
                    hist.sum() as f64 / count as f64
                };
                hists.push((
                    name.clone(),
                    Value::object([
                        ("count", Value::from(count)),
                        ("sum", Value::from(hist.sum())),
                        ("mean", Value::from(mean)),
                        ("p50", Value::from(hist.percentile(50.0))),
                        ("p95", Value::from(hist.percentile(95.0))),
                        ("p99", Value::from(hist.percentile(99.0))),
                        ("max", Value::from(hist.max())),
                    ]),
                ));
            }
        }
    }
    drop(metrics);
    for list in [&mut counters, &mut gauges, &mut hists] {
        list.sort_by(|(a, _), (b, _)| a.cmp(b));
    }
    let mut benches: Vec<(String, Value)> = bench_records()
        .into_iter()
        .map(|b| {
            (
                b.name,
                Value::object([
                    ("median_ns", Value::from(b.median_ns)),
                    ("iters", Value::from(b.iters)),
                    (
                        "batch_ns",
                        Value::Array(b.batch_ns.iter().map(|&ns| Value::from(ns)).collect()),
                    ),
                ]),
            )
        })
        .collect();
    benches.sort_by(|(a, _), (b, _)| a.cmp(b));
    Value::object([
        ("schema_version", Value::from(SCHEMA_VERSION)),
        ("manifest", Manifest::collect(run).to_json()),
        ("counters", Value::Object(counters)),
        ("gauges", Value::Object(gauges)),
        ("histograms", Value::Object(hists)),
        ("benches", Value::Object(benches)),
        ("dropped_events", Value::from(dropped_events())),
    ])
}

/// The artifact root every sink writes under: `RF_RESULTS_DIR` if set,
/// otherwise `results`.
pub fn results_dir() -> String {
    std::env::var("RF_RESULTS_DIR").unwrap_or_else(|_| "results".into())
}

fn io_context(what: &str, e: std::io::Error) -> std::io::Error {
    std::io::Error::new(e.kind(), format!("{what}: {e}"))
}

/// Checks a run name for use as a file stem: non-empty, only
/// `[A-Za-z0-9._-]`, no path separators, no leading `.`, no `..`.
///
/// # Errors
///
/// Returns a message naming the offending run name and rule.
pub fn validate_run_name(run: &str) -> Result<(), String> {
    if run.is_empty() {
        return Err("run name is empty".into());
    }
    if run.starts_with('.') || run.contains("..") {
        return Err(format!(
            "run name `{run}` must not start with `.` or contain `..`"
        ));
    }
    if let Some(c) = run
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return Err(format!(
            "run name `{run}` contains `{c}`; only [A-Za-z0-9._-] are allowed"
        ));
    }
    Ok(())
}

/// Writes [`snapshot`] (with `run` recorded in its [`Manifest`]) to
/// `<RF_RESULTS_DIR|results>/obs/<run>.json` and appends the run to the
/// `<RF_RESULTS_DIR|results>/runs/index.json` registry, returning the
/// snapshot path.
///
/// # Errors
///
/// Rejects run names that fail [`validate_run_name`] with
/// [`std::io::ErrorKind::InvalidInput`]; directory-creation and file-write
/// failures are returned with the failing path in the message.
pub fn write_snapshot(run: &str) -> std::io::Result<String> {
    validate_run_name(run)
        .map_err(|msg| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg))?;
    let dir = format!("{}/obs", results_dir());
    std::fs::create_dir_all(&dir).map_err(|e| io_context("creating snapshot dir", e))?;
    let path = format!("{dir}/{run}.json");
    let doc = snapshot_for_run(run);
    std::fs::write(&path, doc.to_pretty())
        .map_err(|e| io_context(&format!("writing snapshot {path}"), e))?;
    let manifest = doc.get("manifest").cloned().unwrap_or(Value::Null);
    append_run_index(manifest, &path)?;
    Ok(path)
}

/// Appends one run (its manifest plus the snapshot path) to the
/// `<RF_RESULTS_DIR|results>/runs/index.json` registry, returning the
/// registry path. The write is atomic (temp file + rename), so a crashed
/// or concurrent run can never leave the registry unparsable.
///
/// # Errors
///
/// Propagates directory-creation and file-write failures with context.
fn append_run_index(manifest: Value, snapshot_path: &str) -> std::io::Result<String> {
    let _serial = global().index_lock.lock().expect("index lock");
    let dir = format!("{}/runs", results_dir());
    std::fs::create_dir_all(&dir).map_err(|e| io_context("creating runs dir", e))?;
    let path = format!("{dir}/index.json");
    let mut runs: Vec<Value> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| Value::parse(&text).ok())
        .and_then(|doc| {
            doc.get("runs")
                .and_then(Value::as_array)
                .map(<[Value]>::to_vec)
        })
        .unwrap_or_default();
    runs.push(Value::object([
        ("manifest", manifest),
        ("snapshot", Value::from(snapshot_path)),
    ]));
    let doc = Value::object([
        ("schema_version", Value::from(SCHEMA_VERSION)),
        ("runs", Value::Array(runs)),
    ]);
    let tmp = format!("{path}.tmp.{}", std::process::id());
    std::fs::write(&tmp, doc.to_pretty())
        .map_err(|e| io_context(&format!("writing registry {tmp}"), e))?;
    std::fs::rename(&tmp, &path).map_err(|e| io_context(&format!("renaming into {path}"), e))?;
    Ok(path)
}

/// Zeroes every metric, discards all buffered events, and clears the
/// dropped-event count. Metric handles cached by call sites stay valid
/// (identities are preserved; only values reset).
pub fn reset() {
    let g = global();
    {
        let metrics = g.metrics.lock().expect("metrics registry");
        for (_, m) in metrics.iter() {
            match m {
                Metric::Counter(c) => c.store(0, Ordering::Relaxed),
                Metric::Gauge(b) => b.store(0f64.to_bits(), Ordering::Relaxed),
                Metric::Histogram(h) => {
                    h.count.store(0, Ordering::Relaxed);
                    h.sum.store(0, Ordering::Relaxed);
                    h.max.store(0, Ordering::Relaxed);
                    for b in h.buckets.iter() {
                        b.store(0, Ordering::Relaxed);
                    }
                }
            }
        }
    }
    let mut buffers = g.buffers.lock().expect("buffer registry");
    for buf in buffers.iter() {
        buf.events.lock().expect("thread buffer").clear();
    }
    buffers.retain(|b| Arc::strong_count(b) > 1);
    g.dropped.store(0, Ordering::Relaxed);
    drop(buffers);
    *g.run_ctx.lock().expect("run context") = RunContext::default();
    g.benches.lock().expect("bench records").clear();
    crate::flight::clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::{self};
    use crate::{prop_assert, prop_assert_eq};

    /// Restores a dark registry when dropped, so tests compose.
    struct Dark;
    impl Drop for Dark {
        fn drop(&mut self) {
            set_filter("").expect("empty filter parses");
            set_metrics_enabled(false);
            set_force_off(false);
            reset();
        }
    }

    #[test]
    fn filter_parse_and_match() {
        let f = Filter::parse("relsim=debug, perfsim=info,warn").unwrap();
        assert_eq!(f.level_for("relsim"), Level::Debug as u8);
        assert_eq!(f.level_for("relsim::engine"), Level::Debug as u8);
        assert_eq!(
            f.level_for("relsimX"),
            Level::Warn as u8,
            "no partial-word match"
        );
        assert_eq!(f.level_for("perfsim"), Level::Info as u8);
        assert_eq!(f.level_for("plan"), Level::Warn as u8);
        assert_eq!(Filter::parse("").unwrap().level_for("x"), 0);
        assert_eq!(
            Filter::parse("a=trace,a=off").unwrap().level_for("a"),
            0,
            "later directive wins"
        );
        assert!(Filter::parse("bogus").is_err());
        assert!(Filter::parse("=debug").is_err());
        assert!(Filter::parse("a=shouty").is_err());
    }

    #[test]
    fn filter_roundtrips_and_matches_by_longest_prefix() {
        let targets = ["relsim", "relsim::engine", "perfsim", "plan", "faults"];
        let levels = ["off", "error", "warn", "info", "debug", "trace"];
        prop::check(128, |src| {
            let n = src.usize(0, 4);
            let mut spec_items: Vec<String> = Vec::new();
            if src.bool() {
                spec_items.push(levels[src.usize(0, 5)].to_string());
            }
            for _ in 0..n {
                let t = targets[src.usize(0, targets.len() - 1)];
                let l = levels[src.usize(0, 5)];
                // Random cosmetic whitespace must not change the parse.
                let pad = if src.bool() { " " } else { "" };
                spec_items.push(format!("{pad}{t}={l}{pad}"));
            }
            let spec = spec_items.join(",");
            let f = match Filter::parse(&spec) {
                Ok(f) => f,
                Err(e) => return Err(prop::Failed::Assertion(format!("valid spec rejected: {e}"))),
            };
            // Canonical render must reproduce the same filter.
            let f2 = Filter::parse(&f.render()).map_err(prop::Failed::Assertion)?;
            prop_assert_eq!(&f, &f2, "render/parse roundtrip");
            // level_for agrees with a direct model of the semantics:
            // longest matching directive, later wins on ties, else default.
            for probe in ["relsim", "relsim::engine", "relsim::engine::inner", "other"] {
                let mut expect: Option<(usize, u8)> = None;
                for (t, l) in &f.targets {
                    let m = probe == t
                        || (probe.starts_with(t.as_str())
                            && matches!(probe.as_bytes().get(t.len()), Some(b':') | Some(b'.')));
                    if m && expect.is_none_or(|(len, _)| t.len() >= len) {
                        expect = Some((t.len(), *l));
                    }
                }
                let expect = expect.map_or(f.default, |(_, l)| l);
                prop_assert_eq!(f.level_for(probe), expect, "probe {}", probe);
            }
            prop_assert!(f.max_level() >= f.level_for("relsim"));
            Ok(())
        });
    }

    #[test]
    fn histogram_buckets_known_answers() {
        // Exact linear region.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
        }
        // Boundaries of the log-linear region.
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_floor(16), 16);
        assert_eq!(bucket_index(20), 17);
        assert_eq!(bucket_floor(17), 20);
        assert_eq!(bucket_index(31), 19);
        assert_eq!(bucket_floor(19), 28);
        assert_eq!(bucket_index(63), 23);
        assert_eq!(bucket_floor(23), 56);
        assert_eq!(bucket_index(1000), 39);
        assert_eq!(bucket_floor(39), 896);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_bucket_floor_brackets_every_value() {
        prop::check(256, |src| {
            let v = src.u64(0, u64::MAX);
            let idx = bucket_index(v);
            prop_assert!(idx < HIST_BUCKETS);
            prop_assert!(bucket_floor(idx) <= v, "floor below value");
            if idx + 1 < HIST_BUCKETS {
                prop_assert!(bucket_floor(idx + 1) > v, "next floor above value");
            }
            Ok(())
        });
    }

    #[test]
    fn histogram_percentiles_known_answers() {
        let _x = exclusive();
        let _dark = Dark;
        set_metrics_enabled(true);
        let h = histogram("test.kat_hist");
        // 1..=10 all land in exact buckets: percentiles are exact.
        for v in 1..=10u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 55);
        assert_eq!(h.percentile(50.0), 5);
        assert_eq!(h.percentile(10.0), 1);
        assert_eq!(h.percentile(95.0), 10);
        assert_eq!(h.percentile(100.0), 10);
        assert_eq!(h.max(), 10);
        // A large outlier is quantized down to its bucket floor; max is exact.
        h.record(1000);
        assert_eq!(h.percentile(100.0), 896);
        assert_eq!(h.max(), 1000);
        // Nearest-rank p50 of 11 values is the 6th smallest.
        assert_eq!(h.percentile(50.0), 6);
    }

    #[test]
    fn histogram_empty_and_extreme_percentiles() {
        let _x = exclusive();
        let _dark = Dark;
        set_metrics_enabled(true);
        let h = histogram("test.edge_hist");
        // Empty histogram: every percentile (including the endpoints) is 0.
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(h.percentile(p), 0);
        }
        assert_eq!(h.max(), 0);
        // p=0.0 clamps to rank 1 (smallest); p=100.0 to rank count.
        h.record(7);
        assert_eq!(h.percentile(0.0), 7);
        assert_eq!(h.percentile(100.0), 7);
        h.record(3);
        assert_eq!(h.percentile(0.0), 3);
        assert_eq!(h.percentile(100.0), 7);
        // Saturation: u64::MAX lands in the final bucket; the percentile
        // reports that bucket's floor while max stays exact.
        h.record(u64::MAX);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(h.percentile(100.0), bucket_floor(HIST_BUCKETS - 1));
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn histogram_bucket_boundaries_are_consistent() {
        // Every bucket's floor maps back to the same bucket, including the
        // linear/log seam at 15/16 and the saturated final bucket.
        for idx in 0..HIST_BUCKETS {
            assert_eq!(bucket_index(bucket_floor(idx)), idx, "bucket {idx}");
        }
        // The seam itself: 15 is the last exact value, 16 the first
        // log-linear one.
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_floor(bucket_index(17)), 16);
    }

    #[test]
    fn filter_parse_rejects_malformed_specs() {
        for bad in [
            "a==debug",     // empty-looking level `=debug`
            "=info",        // empty target
            "a=",           // empty level
            "a=shout",      // unknown level
            "verbose",      // unknown bare directive
            "a=debug,=off", // malformed second directive
            "a=b=c",        // level is not a level
            "relsim>debug", // not a directive at all
        ] {
            assert!(Filter::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Cosmetic empties between commas stay accepted.
        assert!(Filter::parse("a=debug,,b=info,").is_ok());
    }

    #[test]
    fn run_names_are_sanitized() {
        for bad in ["", "a/b", "..", "a..b", ".hidden", "a\\b", "a b", "a\nb"] {
            let err = validate_run_name(bad).expect_err(bad);
            assert!(err.contains("run name"), "unclear error `{err}`");
            let io_err = write_snapshot(bad).expect_err(bad);
            assert_eq!(io_err.kind(), std::io::ErrorKind::InvalidInput);
        }
        for good in ["smoke", "drift_a", "fig10-coverage", "v2.1"] {
            assert_eq!(validate_run_name(good), Ok(()), "{good}");
        }
    }

    #[test]
    fn manifest_uses_injected_clock_and_run_context() {
        let _x = exclusive();
        let _dark = Dark;
        reset();
        set_clock_ms(Some(|| 1_234_567));
        note_run_context(2016, 4, fnv1a(b"scenario-a"));
        note_run_context(2016, 8, fnv1a(b"scenario-b"));
        note_run_context(99, 2, fnv1a(b"scenario-a"));
        let m = Manifest::collect("demo");
        assert_eq!(m.run, "demo");
        assert_eq!(m.wall_clock_ms, 1_234_567);
        assert_eq!(m.seeds, vec![2016, 99], "distinct seeds in first-use order");
        assert_eq!(m.threads, 8, "max thread count wins");
        assert_eq!(m.sim_runs, 3);
        assert!(!cfg!(debug_assertions) || m.profile == "debug");
        // Same calls in the same order reproduce the same config hash.
        let hash = m.config_hash;
        reset();
        note_run_context(2016, 4, fnv1a(b"scenario-a"));
        note_run_context(2016, 8, fnv1a(b"scenario-b"));
        note_run_context(99, 2, fnv1a(b"scenario-a"));
        assert_eq!(Manifest::collect("demo").config_hash, hash);
        // And a different config stream does not.
        reset();
        note_run_context(2016, 4, fnv1a(b"scenario-b"));
        assert_ne!(Manifest::collect("demo").config_hash, hash);
        // JSON form parses and keeps the hash exact via the hex string.
        let json = m.to_json();
        let parsed = Value::parse(&json.to_pretty()).expect("manifest JSON parses");
        assert_eq!(
            parsed.get("config_hash").and_then(Value::as_str),
            Some(format!("{hash:016x}").as_str())
        );
        set_clock_ms(None);
    }

    #[test]
    fn write_snapshot_embeds_manifest_and_appends_registry() {
        let _x = exclusive();
        let _dark = Dark;
        reset();
        set_metrics_enabled(true);
        set_clock_ms(Some(|| 42));
        let dir = std::env::temp_dir().join(format!("rf_obs_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let prev = std::env::var("RF_RESULTS_DIR").ok();
        std::env::set_var("RF_RESULTS_DIR", &dir);
        let restore = |prev: &Option<String>| match prev {
            Some(v) => std::env::set_var("RF_RESULTS_DIR", v),
            None => std::env::remove_var("RF_RESULTS_DIR"),
        };

        counter("test.registry_counter").add(5);
        note_run_context(7, 2, 0xDEAD);
        let path_a = write_snapshot("reg_a").expect("snapshot a");
        let path_b = write_snapshot("reg_b").expect("snapshot b");
        let snap = Value::parse(&std::fs::read_to_string(&path_a).expect("readable"))
            .expect("snapshot parses");
        let manifest = snap.get("manifest").expect("manifest embedded");
        assert_eq!(manifest.get("run").and_then(Value::as_str), Some("reg_a"));
        assert_eq!(
            manifest.get("wall_clock_ms").and_then(Value::as_f64),
            Some(42.0)
        );
        assert!(snap.get("benches").is_some(), "benches section present");

        let index_path = dir.join("runs/index.json");
        let index = Value::parse(&std::fs::read_to_string(&index_path).expect("index readable"))
            .expect("index parses");
        let runs = index
            .get("runs")
            .and_then(Value::as_array)
            .expect("runs array");
        assert_eq!(runs.len(), 2, "one entry per instrumented run");
        assert_eq!(
            runs[1].get("snapshot").and_then(Value::as_str),
            Some(path_b.as_str())
        );
        assert_eq!(
            runs[0]
                .get("manifest")
                .and_then(|m| m.get("run"))
                .and_then(Value::as_str),
            Some("reg_a")
        );

        restore(&prev);
        set_clock_ms(None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_records_land_in_snapshot() {
        let _x = exclusive();
        let _dark = Dark;
        reset();
        set_metrics_enabled(true);
        record_bench("test.bench", 120.0, 1000, &[110.0, 120.0, 130.0]);
        record_bench("test.bench", 125.0, 1000, &[115.0, 125.0, 135.0]);
        let snap = snapshot();
        let b = snap
            .get("benches")
            .and_then(|b| b.get("test.bench"))
            .expect("bench record in snapshot");
        assert_eq!(b.get("median_ns").and_then(Value::as_f64), Some(125.0));
        assert_eq!(
            b.get("batch_ns")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(3),
            "latest record replaces the earlier one"
        );
        // Disabled metrics drop records.
        set_metrics_enabled(false);
        reset();
        record_bench("test.bench2", 1.0, 1, &[1.0]);
        assert!(bench_records().is_empty());
    }

    #[test]
    fn fnv1a_known_answers() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn counters_are_exact_under_thread_sharding() {
        let _x = exclusive();
        let _dark = Dark;
        set_metrics_enabled(true);
        let c = counter("test.sharded");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        // Same name returns the same cell.
        assert_eq!(counter("test.sharded").get(), 80_000);
    }

    #[test]
    fn disabled_paths_record_nothing() {
        let _x = exclusive();
        let _dark = Dark;
        set_metrics_enabled(false);
        let c = counter("test.disabled");
        let h = histogram("test.disabled_hist");
        c.add(5);
        h.record(7);
        {
            let _t = h.start_span();
        }
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert!(!enabled("anything", Level::Error));
        // Force-off wins over explicit enables.
        set_metrics_enabled(true);
        set_force_off(true);
        c.add(5);
        assert_eq!(c.get(), 0);
        assert!(!metrics_enabled());
    }

    #[test]
    fn scoped_events_merge_deterministically() {
        let _x = exclusive();
        let _dark = Dark;
        set_filter("test=trace").unwrap();
        // Emit from threads in scrambled scope order; the drain must sort
        // by (trial, group, seq) regardless.
        std::thread::scope(|scope| {
            for t in [2u64, 0, 1] {
                scope.spawn(move || {
                    let _s = scope_guard(t);
                    trace_event!(target: "test", Level::Debug, "first", t = t);
                    trace_event!(target: "test", Level::Debug, "second", t = t);
                });
            }
        });
        fn scope_guard(trial: u64) -> ScopeGuard {
            scope(trial, 0)
        }
        let events = drain_events();
        assert_eq!(events.len(), 6);
        let text = render_text(&events);
        let expect = "[debug test] first trial=0 group=0 t=0\n\
                      [debug test] second trial=0 group=0 t=0\n\
                      [debug test] first trial=1 group=0 t=1\n\
                      [debug test] second trial=1 group=0 t=1\n\
                      [debug test] first trial=2 group=0 t=2\n\
                      [debug test] second trial=2 group=0 t=2\n";
        assert_eq!(text, expect);
        assert!(drain_events().is_empty(), "drain empties the buffers");
        assert_eq!(dropped_events(), 0);
    }

    #[test]
    fn filtering_suppresses_events_and_nested_scopes_restore() {
        let _x = exclusive();
        let _dark = Dark;
        set_filter("loud=debug").unwrap();
        {
            let _outer = scope(3, 1);
            trace_event!(target: "loud", Level::Debug, "kept");
            trace_event!(target: "loud", Level::Trace, "too_deep");
            trace_event!(target: "quiet", Level::Error, "filtered_target");
            {
                let _inner = scope(4, 2);
                trace_event!(target: "loud", Level::Debug, "inner");
            }
            trace_event!(target: "loud", Level::Debug, "outer_again");
        }
        let events = drain_events();
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert_eq!(names, ["kept", "outer_again", "inner"]);
        // The outer scope's sequence resumed after the inner scope closed.
        assert_eq!(events[1].seq, 1);
        assert_eq!((events[2].trial, events[2].group), (4, 2));
    }

    #[test]
    fn snapshot_roundtrips_through_strict_parser() {
        let _x = exclusive();
        let _dark = Dark;
        set_metrics_enabled(true);
        counter("test.snap_counter").add(42);
        gauge("test.snap_gauge").set(2.5);
        let h = histogram("test.snap_hist");
        h.record(3);
        h.record(9);
        let snap = snapshot();
        let parsed = Value::parse(&snap.to_pretty()).expect("snapshot is valid JSON");
        assert_eq!(parsed, snap);
        assert_eq!(
            parsed.get("schema_version").and_then(Value::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
        let counters = parsed.get("counters").expect("counters key");
        assert_eq!(
            counters.get("test.snap_counter").and_then(Value::as_f64),
            Some(42.0)
        );
        assert_eq!(
            parsed
                .get("gauges")
                .and_then(|g| g.get("test.snap_gauge"))
                .and_then(Value::as_f64),
            Some(2.5)
        );
        let hist = parsed
            .get("histograms")
            .and_then(|h| h.get("test.snap_hist"))
            .expect("histogram entry");
        assert_eq!(hist.get("count").and_then(Value::as_f64), Some(2.0));
        assert_eq!(hist.get("max").and_then(Value::as_f64), Some(9.0));
        assert_eq!(hist.get("p50").and_then(Value::as_f64), Some(3.0));
        assert_eq!(
            parsed.get("dropped_events").and_then(Value::as_f64),
            Some(0.0)
        );
        // reset() zeroes values but keeps cached handles wired up.
        let c = counter("test.snap_counter");
        reset();
        assert_eq!(c.get(), 0);
        c.add(7);
        assert_eq!(counter("test.snap_counter").get(), 7);
    }

    #[test]
    fn events_to_json_is_parseable() {
        let _x = exclusive();
        let _dark = Dark;
        set_filter("test=trace").unwrap();
        {
            let _s = scope(1, 0);
            trace_event!(target: "test", Level::Info, "mixed",
                n = 3u64, neg = -2i64, frac = 0.5f64, flag = true, label = "row");
        }
        let events = drain_events();
        let json = events_to_json(&events);
        let parsed = Value::parse(&json.to_string()).expect("event JSON parses");
        let first = &parsed.as_array().expect("array")[0];
        assert_eq!(first.get("name").and_then(Value::as_str), Some("mixed"));
        assert_eq!(first.get("trial").and_then(Value::as_f64), Some(1.0));
        let fields = first.get("fields").expect("fields");
        assert_eq!(fields.get("neg").and_then(Value::as_f64), Some(-2.0));
        assert_eq!(fields.get("flag").and_then(Value::as_bool), Some(true));
        assert_eq!(fields.get("label").and_then(Value::as_str), Some("row"));
    }
}
