//! A tiny wall-clock benchmarking harness for the `harness = false`
//! bench targets.
//!
//! It follows the shape that makes micro-benchmarks trustworthy —
//! calibrate an iteration count so one batch is long enough for the clock,
//! run several batches, report the median (robust to scheduler noise) —
//! without statistical machinery beyond that. Numbers print one per line
//! as `name  <ns>/iter  (<iters> iters x <batches> batches)`.
//!
//! Budget knobs for CI come from the environment: `RF_BENCH_BATCH_MS`
//! (target milliseconds per batch, default 10) and `RF_BENCH_BATCHES`
//! (batches per benchmark, default 7).
//!
//! # Examples
//!
//! ```
//! use relaxfault_util::timing::{black_box, Harness};
//! use std::time::Duration;
//!
//! let mut h = Harness::with_budget(Duration::from_micros(200), 3);
//! h.bench("sum", || (0..100u64).map(black_box).sum::<u64>());
//! assert_eq!(h.results().len(), 1);
//! ```

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// One benchmark's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name as passed to [`Harness::bench`].
    pub name: String,
    /// Median nanoseconds per iteration across batches.
    pub median_ns: f64,
    /// Iterations per batch after calibration.
    pub iters: u64,
    /// Per-batch nanoseconds per iteration, in run order. The regression
    /// reporter feeds these to [`crate::stats::median_ci`] to decide
    /// whether two runs' medians are statistically distinguishable.
    pub batch_ns: Vec<f64>,
}

/// Runs and reports a sequence of named benchmarks.
pub struct Harness {
    batch_target: Duration,
    batches: usize,
    results: Vec<BenchResult>,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// A harness with the environment-configured (or default) budget.
    pub fn new() -> Self {
        let ms = env_u64("RF_BENCH_BATCH_MS", 10);
        let batches = env_u64("RF_BENCH_BATCHES", 7).max(1) as usize;
        Self::with_budget(Duration::from_millis(ms), batches)
    }

    /// A harness with an explicit per-batch time target and batch count.
    pub fn with_budget(batch_target: Duration, batches: usize) -> Self {
        Self {
            batch_target,
            batches: batches.max(1),
            results: Vec::new(),
        }
    }

    /// Times `f`, printing one summary line. The closure's return value is
    /// passed through [`black_box`] so the work is not optimized away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        let iters = self.calibrate(&mut f);
        let batch_ns: Vec<f64> = (0..self.batches)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        let mut sorted = batch_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median_ns = sorted[sorted.len() / 2];
        println!(
            "{name:<40} {:>12}/iter  ({iters} iters x {} batches)",
            format_ns(median_ns),
            self.batches
        );
        crate::obs::record_bench(name, median_ns, iters, &batch_ns);
        self.results.push(BenchResult {
            name: name.to_string(),
            median_ns,
            iters,
            batch_ns,
        });
    }

    /// Grows the iteration count until one batch meets the time target.
    fn calibrate<T>(&self, f: &mut impl FnMut() -> T) -> u64 {
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.batch_target || iters >= 1 << 30 {
                return iters;
            }
            // Scale toward the target; overshoot by going 10x while the
            // measurement is too short to trust.
            iters = if elapsed < self.batch_target / 20 {
                iters.saturating_mul(10)
            } else {
                let scale = self.batch_target.as_nanos() as f64 / elapsed.as_nanos().max(1) as f64;
                ((iters as f64 * scale) as u64 + 1).max(iters + 1)
            };
        }
    }

    /// All results recorded so far, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}us", ns / 1_000.0)
    } else {
        format!("{:.2}ms", ns / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_plausible_time() {
        let mut h = Harness::with_budget(Duration::from_micros(200), 3);
        h.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..50u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        let r = &h.results()[0];
        assert_eq!(r.name, "spin");
        assert!(r.median_ns > 0.0);
        assert!(r.iters >= 1);
        assert_eq!(r.batch_ns.len(), 3);
        let mut sorted = r.batch_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(r.median_ns, sorted[1]);
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(12.34), "12.3ns");
        assert_eq!(format_ns(4_500.0), "4.50us");
        assert_eq!(format_ns(2_500_000.0), "2.50ms");
    }
}
