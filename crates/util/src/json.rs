//! A minimal JSON value type, writer, and parser.
//!
//! The workspace only needs JSON in two places — machine-readable copies of
//! benchmark tables and scenario configuration dumps — so this module
//! implements exactly RFC 8259 with two simplifications: numbers are `f64`
//! (every value the workspace emits fits a double exactly) and object keys
//! keep insertion order (emitted files diff cleanly run-to-run).
//!
//! # Examples
//!
//! ```
//! use relaxfault_util::json::Value;
//!
//! let v = Value::object([
//!     ("trials", Value::from(4000.0)),
//!     ("label", Value::from("RelaxFault")),
//!     ("coverage", Value::Array(vec![Value::from(0.9), Value::from(0.95)])),
//! ]);
//! let text = v.to_string();
//! assert_eq!(Value::parse(&text).unwrap(), v);
//! assert_eq!(v.get("label").and_then(Value::as_str), Some("RelaxFault"));
//! ```

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed and emitted as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered, duplicate keys are kept as written.
    Object(Vec<(String, Value)>),
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(v as f64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl Value {
    /// Builds an object from `(key, value)` pairs in order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Self {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// First value under `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Upserts `key` in an object: replaces the first existing entry in
    /// place (preserving field order) or appends a new one. No-op on
    /// non-objects.
    pub fn set(&mut self, key: &str, value: Value) {
        if let Value::Object(pairs) = self {
            match pairs.iter_mut().find(|(k, _)| k == key) {
                Some((_, slot)) => *slot = value,
                None => pairs.push((key.to_string(), value)),
            }
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the layout the results files use.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Object(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&format_number(*n)),
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError::at(pos, "trailing characters after document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Value {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// JSON has no NaN/Infinity; emit null like other emitters do. Integral
/// values print without a fractional part so counts stay readable.
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".into();
    }
    if n == n.trunc() && n.abs() < 9e15 {
        format!("{}", n as i64)
    } else {
        let s = format!("{n}");
        debug_assert!(Value::parse(&s).is_ok());
        s
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        Self {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError::at(*pos, format!("expected `{lit}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    match bytes.get(*pos) {
        None => Err(ParseError::at(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(ParseError::at(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(ParseError::at(*pos, "expected `:` after object key"));
                }
                *pos += 1;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(ParseError::at(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ParseError::at(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| ParseError::at(*pos, "bad \\u escape"))?;
                        // Surrogate pairs: the results files never contain
                        // them, but accept the standard encoding anyway.
                        let c = if (0xD800..0xDC00).contains(&hex) {
                            *pos += 5;
                            expect(bytes, pos, "\\u")?;
                            *pos -= 2; // expect advanced past `\u`; re-center on hex
                            let low = bytes
                                .get(*pos + 2..*pos + 6)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| ParseError::at(*pos, "bad low surrogate"))?;
                            *pos += 1;
                            let combined =
                                0x10000 + ((hex - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                                .ok_or_else(|| ParseError::at(*pos, "bad surrogate pair"))?
                        } else {
                            char::from_u32(hex)
                                .ok_or_else(|| ParseError::at(*pos, "bad \\u escape"))?
                        };
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(ParseError::at(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("valid UTF-8"));
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| ParseError::at(start, format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::object([
            ("name", Value::from("fig10")),
            ("trials", Value::from(100_000u64)),
            ("coverage", Value::from(0.9034)),
            ("flags", Value::Array(vec![Value::Bool(true), Value::Null])),
            ("nested", Value::object([("k", Value::from("v"))])),
            ("empty_arr", Value::Array(vec![])),
            ("empty_obj", Value::Object(vec![])),
        ]);
        assert_eq!(Value::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Value::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn compact_layout_is_canonical() {
        let v = Value::object([
            ("a", Value::from(1u64)),
            ("b", Value::Array(vec![Value::from(1.5), Value::from("x")])),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[1.5,"x"]}"#);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nbreak \"quoted\" back\\slash\ttab \u{1} unicode é 猫";
        let v = Value::from(s);
        let parsed = Value::parse(&v.to_string()).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn parses_standard_escapes_and_numbers() {
        let v = Value::parse(r#"{"s":"aA\t/","n":-1.25e2,"i":42}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("aA\t/"));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(-125.0));
        assert_eq!(v.get("i").and_then(Value::as_f64), Some(42.0));
    }

    #[test]
    fn integral_numbers_emit_without_fraction() {
        assert_eq!(Value::from(4000u64).to_string(), "4000");
        assert_eq!(Value::from(0.5).to_string(), "0.5");
        assert_eq!(Value::Number(f64::NAN).to_string(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "1 2",
            "{'a':1}",
            "",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = Value::object([("x", Value::from(true))]);
        assert_eq!(v.get("x").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("y"), None);
        assert!(Value::Null.get("x").is_none());
        let arr = Value::Array(vec![Value::from(1u64)]);
        assert_eq!(arr.as_array().map(|a| a.len()), Some(1));
    }
}
