//! Physical-extent assumptions for each fault mode.
//!
//! Field studies classify faults by *address pattern* (one row address, one
//! column address, ...) but do not publish the physical extent inside the
//! device. This module owns those assumptions; DESIGN.md §1 documents the
//! calibration against the paper's published coverage anchors (PPR ≈ 73%,
//! FreeFault-1way ≈ 74/84% no-hash/hash, RelaxFault-1way ≈ 90% at ≤ 82 KiB).

use crate::modes::FaultMode;
use crate::region::{BankSet, Extent};
use relaxfault_dram::DramConfig;
use relaxfault_util::dist::log_uniform;
use relaxfault_util::rng::Rng;

/// Extent-distribution knobs for every fault mode.
///
/// # Examples
///
/// ```
/// use relaxfault_util::rng::Rng64;
/// use relaxfault_dram::DramConfig;
/// use relaxfault_faults::{FaultGeometry, FaultMode};
///
/// let g = FaultGeometry::default();
/// let cfg = DramConfig::isca16_reliability();
/// let mut rng = Rng64::seed_from_u64(1);
/// let extent = g.sample_extent(&mut rng, FaultMode::SingleRow, &cfg);
/// assert!(matches!(extent, relaxfault_faults::Extent::Row { .. }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultGeometry {
    /// Probability that a "single bit/word" fault affects a multi-bit word
    /// rather than one bit (repair cost is identical; kept for fidelity).
    pub p_word_given_bitword: f64,
    /// Probability that a column fault is confined to one subarray's rows;
    /// otherwise it spans `2..=max_column_subarrays` subarrays
    /// (log-uniform).
    pub p_column_single_subarray: f64,
    /// Maximum subarrays a column fault can span.
    pub max_column_subarrays: u32,
    /// Probability that a "single bank" fault kills the entire bank
    /// (unrepairable by fine-grained mechanisms); otherwise it is a row
    /// cluster.
    pub p_whole_bank: f64,
    /// Row-cluster size bounds for repairable bank faults (log-uniform,
    /// inclusive).
    pub bank_cluster_rows: (u32, u32),
    /// Bounds on how many whole banks a multi-bank fault kills
    /// (log-uniform, inclusive; clamped to the device's bank count).
    pub multi_bank_banks: (u32, u32),
}

impl Default for FaultGeometry {
    fn default() -> Self {
        Self {
            p_word_given_bitword: 0.25,
            p_column_single_subarray: 0.80,
            max_column_subarrays: 4,
            p_whole_bank: 0.02,
            bank_cluster_rows: (16, 2048),
            multi_bank_banks: (2, 8),
        }
    }
}

impl FaultGeometry {
    /// Samples the physical extent of a new fault of `mode`.
    ///
    /// Multi-rank faults are modelled as whole-device faults (all banks):
    /// the shared-I/O failures behind the multi-rank signature take the
    /// whole device position out, which is the conservative choice for both
    /// repair (unrepairable) and ECC analysis (maximal overlap).
    pub fn sample_extent<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        mode: FaultMode,
        cfg: &DramConfig,
    ) -> Extent {
        let bank = rng.gen_range(0..cfg.banks);
        let row = rng.gen_range(0..cfg.rows);
        let col = rng.gen_range(0..cfg.cols);
        match mode {
            FaultMode::SingleBitWord => {
                if rng.gen_bool(self.p_word_given_bitword) {
                    Extent::Word {
                        bank,
                        row,
                        col: col & !(cfg.burst_length - 1),
                    }
                } else {
                    Extent::Bit { bank, row, col }
                }
            }
            FaultMode::SingleRow => Extent::Row { bank, row },
            FaultMode::SingleColumn => {
                let subarrays = if rng.gen_bool(self.p_column_single_subarray) {
                    1
                } else {
                    let hi = self
                        .max_column_subarrays
                        .min(cfg.subarrays_per_bank())
                        .max(2);
                    log_uniform(rng, 2.0, hi as f64).round() as u32
                };
                let span = subarrays.min(cfg.subarrays_per_bank());
                let first = rng.gen_range(0..=(cfg.subarrays_per_bank() - span));
                Extent::Column {
                    bank,
                    col,
                    row_start: first * cfg.subarray_rows,
                    row_count: span * cfg.subarray_rows,
                }
            }
            FaultMode::SingleBank => {
                if rng.gen_bool(self.p_whole_bank) {
                    Extent::Banks {
                        banks: BankSet::one(bank),
                    }
                } else {
                    let (lo, hi) = self.bank_cluster_rows;
                    let hi = hi.min(cfg.rows);
                    let rows = log_uniform(rng, lo as f64, hi as f64).round() as u32;
                    let rows = rows.clamp(1, cfg.rows);
                    let start = rng.gen_range(0..=(cfg.rows - rows));
                    Extent::RowCluster {
                        bank,
                        row_start: start,
                        row_count: rows,
                    }
                }
            }
            FaultMode::MultiBank => {
                let (lo, hi) = self.multi_bank_banks;
                let hi = hi.min(cfg.banks);
                let lo = lo.min(hi);
                let n = log_uniform(rng, lo as f64, hi as f64).round() as u32;
                let n = n.clamp(1, cfg.banks);
                // Choose n distinct banks.
                let mut mask = 0u32;
                while mask.count_ones() < n {
                    mask |= 1 << rng.gen_range(0..cfg.banks);
                }
                Extent::Banks {
                    banks: BankSet(mask),
                }
            }
            FaultMode::MultiRank => Extent::Banks {
                banks: BankSet::all(cfg.banks),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxfault_util::rng::Rng64;

    fn cfg() -> DramConfig {
        DramConfig::isca16_reliability()
    }

    #[test]
    fn extents_match_modes() {
        let g = FaultGeometry::default();
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(9);
        for _ in 0..200 {
            assert!(matches!(
                g.sample_extent(&mut rng, FaultMode::SingleBitWord, &c),
                Extent::Bit { .. } | Extent::Word { .. }
            ));
            assert!(matches!(
                g.sample_extent(&mut rng, FaultMode::SingleRow, &c),
                Extent::Row { .. }
            ));
            assert!(matches!(
                g.sample_extent(&mut rng, FaultMode::SingleColumn, &c),
                Extent::Column { .. }
            ));
            assert!(matches!(
                g.sample_extent(&mut rng, FaultMode::SingleBank, &c),
                Extent::RowCluster { .. } | Extent::Banks { .. }
            ));
        }
    }

    #[test]
    fn column_faults_are_subarray_aligned() {
        let g = FaultGeometry::default();
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(17);
        for _ in 0..500 {
            if let Extent::Column {
                row_start,
                row_count,
                ..
            } = g.sample_extent(&mut rng, FaultMode::SingleColumn, &c)
            {
                assert_eq!(row_start % c.subarray_rows, 0);
                assert_eq!(row_count % c.subarray_rows, 0);
                assert!(row_start + row_count <= c.rows);
            } else {
                panic!("expected column extent");
            }
        }
    }

    #[test]
    fn bank_clusters_stay_in_bounds() {
        let g = FaultGeometry::default();
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(23);
        let mut whole = 0;
        let n = 2000;
        for _ in 0..n {
            match g.sample_extent(&mut rng, FaultMode::SingleBank, &c) {
                Extent::RowCluster {
                    row_start,
                    row_count,
                    bank,
                } => {
                    assert!(bank < c.banks);
                    assert!(row_count >= 1);
                    assert!(row_start + row_count <= c.rows);
                }
                Extent::Banks { banks } => {
                    assert_eq!(banks.len(), 1);
                    whole += 1;
                }
                other => panic!("unexpected extent {other:?}"),
            }
        }
        let frac = whole as f64 / n as f64;
        let expect = FaultGeometry::default().p_whole_bank;
        assert!((frac - expect).abs() < 0.015, "whole-bank fraction {frac}");
    }

    #[test]
    fn multibank_hits_multiple_banks() {
        let g = FaultGeometry::default();
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(29);
        for _ in 0..200 {
            if let Extent::Banks { banks } = g.sample_extent(&mut rng, FaultMode::MultiBank, &c) {
                assert!(banks.len() >= 2 && banks.len() <= c.banks);
            } else {
                panic!("expected banks extent");
            }
        }
    }

    #[test]
    fn multirank_is_whole_device() {
        let g = FaultGeometry::default();
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(31);
        if let Extent::Banks { banks } = g.sample_extent(&mut rng, FaultMode::MultiRank, &c) {
            assert_eq!(banks.len(), c.banks);
        } else {
            panic!("expected banks extent");
        }
    }

    #[test]
    fn word_faults_align_to_burst() {
        let g = FaultGeometry {
            p_word_given_bitword: 1.0,
            ..Default::default()
        };
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(37);
        for _ in 0..100 {
            if let Extent::Word { col, .. } =
                g.sample_extent(&mut rng, FaultMode::SingleBitWord, &c)
            {
                assert_eq!(col % c.burst_length, 0);
            } else {
                panic!("expected word extent");
            }
        }
    }
}
