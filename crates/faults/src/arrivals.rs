//! Streaming arrival cursors: a node's sampled fault lifetime replayed
//! epoch by epoch.
//!
//! The fleet simulator advances a population through discrete lifetime
//! *epochs* (equal slices of the observation window) and only re-evaluates
//! nodes whose fault state changed in the current epoch. The sampler
//! draws a node's whole lifetime up front ([`NodeFaults::events`], sorted
//! by arrival time); this module turns that sorted lifetime into an
//! incremental arrival stream: [`arrival_epochs`] classifies each event
//! into its epoch **once**, and [`ArrivalCursor`] walks the resulting
//! schedule, handing the fleet the growing event-prefix lengths as epochs
//! pass.
//!
//! Classifying once and storing `(epoch, prefix_len)` pairs — rather than
//! re-deriving epoch boundaries per step — means float boundary cases are
//! decided exactly once, so a resumed run (which rebuilds the cursor from
//! the resampled lifetime) always reproduces the original schedule
//! bit-exactly.
//!
//! # Examples
//!
//! ```
//! use relaxfault_faults::arrivals::ArrivalCursor;
//! use relaxfault_faults::{FaultEvent, FaultMode, RegionList, Transience};
//!
//! let ev = |t: f64| FaultEvent {
//!     time_hours: t,
//!     mode: FaultMode::SingleBitWord,
//!     transience: Transience::Permanent,
//!     regions: RegionList::new(),
//! };
//! // Two arrivals in epoch 0, one in epoch 3 (4 epochs over 100 hours).
//! let events = [ev(1.0), ev(20.0), ev(90.0)];
//! let mut cur = ArrivalCursor::new(&events, 100.0, 4);
//! assert_eq!(cur.advance_to(0), Some((0, 2)));
//! assert_eq!(cur.advance_to(1), None); // nothing new: node stays clean
//! assert_eq!(cur.advance_to(3), Some((2, 3)));
//! assert!(cur.is_exhausted());
//! ```

use crate::inject::FaultEvent;

/// Maps an arrival time to its epoch index: epoch `e` covers
/// `[e·hours/epochs, (e+1)·hours/epochs)`, and the final epoch absorbs
/// any boundary-rounding stragglers so every event lands in a valid
/// epoch.
pub fn epoch_of(time_hours: f64, hours: f64, epochs: u32) -> u32 {
    debug_assert!(epochs > 0 && hours > 0.0);
    let raw = (time_hours / hours * epochs as f64).floor();
    if raw < 0.0 {
        return 0;
    }
    (raw as u32).min(epochs - 1)
}

/// Classifies a sorted event lifetime into epochs, returning one
/// `(epoch, prefix_len)` pair per epoch that receives at least one new
/// arrival: after epoch `epoch` completes, the node's live event prefix
/// is `events[..prefix_len]`. Pairs are ascending in both fields; epochs
/// with no arrivals are absent (the node is *clean* for them and needs no
/// re-evaluation).
pub fn arrival_epochs(events: &[FaultEvent], hours: f64, epochs: u32) -> Vec<(u32, u32)> {
    debug_assert!(
        events
            .windows(2)
            .all(|w| w[0].time_hours <= w[1].time_hours),
        "lifetimes are sorted by arrival time"
    );
    let mut schedule: Vec<(u32, u32)> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let epoch = epoch_of(e.time_hours, hours, epochs);
        let prefix = (i + 1) as u32;
        match schedule.last_mut() {
            Some(last) if last.0 == epoch => last.1 = prefix,
            _ => schedule.push((epoch, prefix)),
        }
    }
    schedule
}

/// A streaming cursor over one node's arrival schedule. The fleet holds
/// one per faulty node and asks, each epoch, whether the node's fault
/// state grew — and if so, from which event prefix to which.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalCursor {
    /// `(epoch, cumulative prefix length)` pairs from [`arrival_epochs`].
    schedule: Vec<(u32, u32)>,
    /// Next schedule entry not yet delivered.
    pos: usize,
}

impl ArrivalCursor {
    /// Builds the cursor for a sorted lifetime over `epochs` equal slices
    /// of an `hours`-long observation window.
    pub fn new(events: &[FaultEvent], hours: f64, epochs: u32) -> Self {
        Self {
            schedule: arrival_epochs(events, hours, epochs),
            pos: 0,
        }
    }

    /// The full `(epoch, prefix_len)` schedule.
    pub fn schedule(&self) -> &[(u32, u32)] {
        &self.schedule
    }

    /// Event-prefix length already delivered through past
    /// [`ArrivalCursor::advance_to`] calls.
    pub fn consumed(&self) -> u32 {
        if self.pos == 0 {
            0
        } else {
            self.schedule[self.pos - 1].1
        }
    }

    /// Delivers every arrival up to and including `epoch`: returns
    /// `Some((old_prefix, new_prefix))` when the node gained events since
    /// the last call (the node is *dirty* and must be re-evaluated on
    /// `events[..new_prefix]`), or `None` when its fault state is
    /// unchanged. Epochs must be visited in non-decreasing order.
    pub fn advance_to(&mut self, epoch: u32) -> Option<(u32, u32)> {
        let old = self.consumed();
        while self.pos < self.schedule.len() && self.schedule[self.pos].0 <= epoch {
            self.pos += 1;
        }
        let new = self.consumed();
        (new != old).then_some((old, new))
    }

    /// Positions the cursor as if every epoch `<= epoch` had already been
    /// delivered — how a resumed fleet rebuilds cursor state from a
    /// checkpointed epoch count without replaying the epochs.
    pub fn seek_past(&mut self, epoch: u32) {
        self.pos = 0;
        self.advance_to(epoch);
    }

    /// Whether every scheduled arrival has been delivered.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.schedule.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::{FaultMode, Transience};
    use crate::region::RegionList;

    fn ev(t: f64) -> FaultEvent {
        FaultEvent {
            time_hours: t,
            mode: FaultMode::SingleBitWord,
            transience: Transience::Permanent,
            regions: RegionList::new(),
        }
    }

    #[test]
    fn epoch_of_partitions_the_window() {
        assert_eq!(epoch_of(0.0, 100.0, 4), 0);
        assert_eq!(epoch_of(24.999, 100.0, 4), 0);
        assert_eq!(epoch_of(25.0, 100.0, 4), 1);
        assert_eq!(epoch_of(99.999, 100.0, 4), 3);
        // The last epoch absorbs boundary stragglers.
        assert_eq!(epoch_of(100.0, 100.0, 4), 3);
        assert_eq!(epoch_of(-0.0, 100.0, 4), 0);
    }

    #[test]
    fn schedule_collapses_same_epoch_arrivals() {
        let events = [ev(1.0), ev(2.0), ev(26.0), ev(99.0)];
        assert_eq!(
            arrival_epochs(&events, 100.0, 4),
            vec![(0, 2), (1, 3), (3, 4)]
        );
        assert!(arrival_epochs(&[], 100.0, 4).is_empty());
    }

    #[test]
    fn single_epoch_takes_everything_at_once() {
        let events = [ev(1.0), ev(99.0)];
        assert_eq!(arrival_epochs(&events, 100.0, 1), vec![(0, 2)]);
    }

    #[test]
    fn cursor_streams_prefix_growth() {
        let events = [ev(1.0), ev(2.0), ev(26.0), ev(99.0)];
        let mut cur = ArrivalCursor::new(&events, 100.0, 4);
        assert_eq!(cur.consumed(), 0);
        assert_eq!(cur.advance_to(0), Some((0, 2)));
        assert_eq!(cur.advance_to(1), Some((2, 3)));
        assert_eq!(cur.advance_to(2), None);
        assert_eq!(cur.advance_to(3), Some((3, 4)));
        assert!(cur.is_exhausted());
        assert_eq!(cur.advance_to(3), None);
    }

    #[test]
    fn cursor_skipping_epochs_coalesces_deliveries() {
        let events = [ev(1.0), ev(30.0), ev(60.0)];
        let mut cur = ArrivalCursor::new(&events, 100.0, 10);
        // Jumping straight to the end delivers the whole lifetime in one
        // dirty interval, exactly what a coarse stepper would see.
        assert_eq!(cur.advance_to(9), Some((0, 3)));
        assert!(cur.is_exhausted());
    }

    #[test]
    fn seek_past_matches_replayed_advances() {
        let events = [ev(1.0), ev(30.0), ev(60.0), ev(95.0)];
        for resume_epoch in 0..10u32 {
            let mut replayed = ArrivalCursor::new(&events, 100.0, 10);
            for e in 0..=resume_epoch {
                replayed.advance_to(e);
            }
            let mut sought = ArrivalCursor::new(&events, 100.0, 10);
            sought.seek_past(resume_epoch);
            assert_eq!(replayed, sought, "resume at epoch {resume_epoch}");
        }
    }
}
