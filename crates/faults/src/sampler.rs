//! Fast node-lifetime sampler.
//!
//! [`crate::FaultModel::sample_node`] draws one lognormal and one Poisson
//! per (device, fault-process) pair — 1,728 heavy samples per node for the
//! paper's geometry, nearly all of which return zero faults. This sampler
//! short-circuits the zero case with a single uniform draw against a
//! precomputed `P(N = 0)` gate:
//!
//! * `q₀ = E_m[exp(−λm)]` is evaluated once per (process, acceleration
//!   class) by numeric quadrature over the lognormal mixing variable;
//! * when the gate fails (probability ≈ λ), `m` is drawn from the
//!   *size-biased* lognormal (the exact conditional in the λ→0 limit,
//!   error `O(λ²)`), and the remaining count from `Poisson(λm)`;
//! * processes with `λ > SLOW_PATH_THRESHOLD` (FIT-accelerated devices at
//!   10× rates) fall back to the exact two-stage draw, so the
//!   approximation only ever applies where it is provably negligible.
//!
//! `tests::matches_reference_sampler` checks the fast and reference
//! samplers agree statistically.

use crate::inject::{FaultEvent, FaultModel, NodeFaults};
use crate::modes::{FaultMode, Transience, HOURS_PER_YEAR};
use relaxfault_dram::{DramConfig, RankId};
use relaxfault_util::dist::{poisson, LogNormal};
use relaxfault_util::rng::Rng;

/// Mean above which the gate approximation is abandoned for the exact
/// two-stage draw.
const SLOW_PATH_THRESHOLD: f64 = 0.02;

#[derive(Debug, Clone, Copy)]
struct ProcessGate {
    mode: FaultMode,
    transience: Transience,
    lambda: f64,
    /// P(N = 0) under the lognormal mixture.
    q0: f64,
    /// Whether to use the exact slow path.
    slow: bool,
}

/// Precomputed sampler for one fault model and geometry.
///
/// # Examples
///
/// ```
/// use relaxfault_util::rng::Rng64;
/// use relaxfault_dram::DramConfig;
/// use relaxfault_faults::{FaultModel, FitRates};
/// use relaxfault_faults::sampler::FaultSampler;
///
/// let cfg = DramConfig::isca16_reliability();
/// let model = FaultModel::isca16(FitRates::cielo(), 6.0);
/// let sampler = FaultSampler::new(&model, &cfg);
/// let mut rng = Rng64::seed_from_u64(1);
/// let node = sampler.sample_node(&mut rng);
/// assert!(node.events.len() < 100);
/// ```
#[derive(Debug, Clone)]
pub struct FaultSampler {
    model: FaultModel,
    cfg: DramConfig,
    hours: f64,
    /// Gates for the acceleration factor (index 0) and the adjusted rest
    /// factor (index 1).
    gates: [Vec<ProcessGate>; 2],
    factors: [f64; 2],
    /// Lognormal of the rate multiplier, and its size-biased counterpart.
    lognorm: Option<(LogNormal, LogNormal)>,
}

impl FaultSampler {
    /// Precomputes the gates for a model/geometry pair.
    pub fn new(model: &FaultModel, cfg: &DramConfig) -> Self {
        let hours = model.years * HOURS_PER_YEAR;
        let v = &model.variation;
        let factors = [v.accel_factor, v.adjusted_rest_factor()];
        let lognorm = if v.device_cv > 0.0 {
            let base = LogNormal::from_mean_cv(1.0, v.device_cv);
            // Size-biased lognormal: same sigma, mu shifted by sigma^2.
            let sigma = base.sigma();
            let biased_mean = (base.mu() + 1.5 * sigma * sigma).exp();
            let biased = LogNormal::from_mean_cv(biased_mean, v.device_cv);
            Some((base, biased))
        } else {
            None
        };
        let make_gates = |factor: f64| -> Vec<ProcessGate> {
            model
                .rates
                .processes()
                .map(|(mode, transience, fit)| {
                    let lambda = fit * 1e-9 * hours * factor;
                    let q0 = match &lognorm {
                        None => (-lambda).exp(),
                        Some((base, _)) => quad_q0(lambda, base),
                    };
                    ProcessGate {
                        mode,
                        transience,
                        lambda,
                        q0,
                        slow: lambda > SLOW_PATH_THRESHOLD,
                    }
                })
                .collect()
        };
        Self {
            model: *model,
            cfg: *cfg,
            hours,
            gates: [make_gates(factors[0]), make_gates(factors[1])],
            factors,
            lognorm,
        }
    }

    /// Samples one node lifetime (drop-in replacement for
    /// [`FaultModel::sample_node`]).
    pub fn sample_node<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeFaults {
        let v = &self.model.variation;
        let cfg = &self.cfg;
        let node_acc = v.accel_node_fraction > 0.0 && rng.gen_bool(v.accel_node_fraction);
        let mut out = NodeFaults {
            events: Vec::new(),
            node_accelerated: node_acc,
            accelerated_dimms: Vec::new(),
        };
        for dimm_flat in 0..cfg.dimms_per_node() {
            let dimm_acc = v.accel_dimm_fraction > 0.0 && rng.gen_bool(v.accel_dimm_fraction);
            if dimm_acc {
                out.accelerated_dimms.push(dimm_flat);
            }
            let class = if node_acc || dimm_acc { 0 } else { 1 };
            if self.factors[class] == 0.0 {
                continue;
            }
            for rank_in_dimm in 0..cfg.ranks_per_dimm {
                let rank = RankId {
                    channel: dimm_flat / cfg.dimms_per_channel,
                    dimm: dimm_flat % cfg.dimms_per_channel,
                    rank: rank_in_dimm,
                };
                for device in 0..cfg.devices_per_rank() {
                    for gate in &self.gates[class] {
                        let count = self.sample_count(gate, rng);
                        for _ in 0..count {
                            let time_hours = rng.gen::<f64>() * self.hours;
                            let extent = self.model.geometry.sample_extent(rng, gate.mode, cfg);
                            let event = FaultEvent {
                                time_hours,
                                mode: gate.mode,
                                transience: gate.transience,
                                regions: self.regions_for(rank, device, extent, gate.mode),
                            };
                            crate::inject::record_injection(&event);
                            out.events.push(event);
                        }
                    }
                }
            }
        }
        out.events.sort_by(|a, b| {
            a.time_hours
                .partial_cmp(&b.time_hours)
                .expect("finite times")
        });
        out
    }

    fn sample_count<R: Rng + ?Sized>(&self, gate: &ProcessGate, rng: &mut R) -> u64 {
        if gate.lambda == 0.0 {
            return 0;
        }
        if gate.slow {
            // Exact two-stage draw for non-negligible means.
            let m = match &self.lognorm {
                None => 1.0,
                Some((base, _)) => base.sample(rng),
            };
            return poisson(rng, gate.lambda * m);
        }
        if rng.gen::<f64>() < gate.q0 {
            return 0;
        }
        // N >= 1: the conditional mixing variable is size-biased in the
        // small-λ limit.
        match &self.lognorm {
            None => 1 + poisson(rng, gate.lambda),
            Some((_, biased)) => {
                let m = biased.sample(rng);
                1 + poisson(rng, gate.lambda * m)
            }
        }
    }

    fn regions_for(
        &self,
        rank: RankId,
        device: u32,
        extent: crate::region::Extent,
        mode: FaultMode,
    ) -> Vec<crate::region::FaultRegion> {
        if mode == FaultMode::MultiRank && self.cfg.ranks_per_dimm > 1 {
            (0..self.cfg.ranks_per_dimm)
                .map(|rk| crate::region::FaultRegion {
                    rank: RankId { rank: rk, ..rank },
                    device,
                    extent,
                })
                .collect()
        } else {
            vec![crate::region::FaultRegion {
                rank,
                device,
                extent,
            }]
        }
    }
}

/// `E[exp(-λ e^{μ+σZ})]` by trapezoid quadrature over the standard normal.
fn quad_q0(lambda: f64, base: &LogNormal) -> f64 {
    if lambda == 0.0 {
        return 1.0;
    }
    let (mu, sigma) = (base.mu(), base.sigma());
    let mut acc = 0.0;
    let mut norm = 0.0;
    let steps = 400;
    let z_max = 8.0;
    for i in 0..=steps {
        let z = -z_max + 2.0 * z_max * i as f64 / steps as f64;
        let w = (-0.5 * z * z).exp() * if i == 0 || i == steps { 0.5 } else { 1.0 };
        let m = (mu + sigma * z).exp();
        acc += w * (-lambda * m).exp();
        norm += w;
    }
    acc / norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::FitRates;
    use relaxfault_util::rng::Rng64;

    fn cfg() -> DramConfig {
        DramConfig::isca16_reliability()
    }

    #[test]
    fn q0_matches_closed_form_without_variation() {
        let model = FaultModel::uniform(FitRates::cielo(), 6.0);
        let s = FaultSampler::new(&model, &cfg());
        for gate in &s.gates[1] {
            assert!((gate.q0 - (-gate.lambda).exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn q0_quadrature_sane() {
        let base = LogNormal::from_mean_cv(1.0, 0.5);
        // Small λ: q0 ≈ 1 − λ.
        let q = quad_q0(1e-4, &base);
        assert!((q - (1.0 - 1e-4)).abs() < 1e-6, "q0 {q}");
        // Large λ: q0 well below exp(-λ·small)...
        assert!(quad_q0(5.0, &base) < 0.1);
        assert_eq!(quad_q0(0.0, &base), 1.0);
    }

    #[test]
    fn matches_reference_sampler() {
        let model = FaultModel::isca16(FitRates::cielo(), 6.0);
        let c = cfg();
        let fast = FaultSampler::new(&model, &c);
        // Large enough that the 5% event-count tolerance sits ~3 standard
        // deviations out for the two independent estimates.
        let n = 80_000;
        let mut rng = Rng64::seed_from_u64(555);
        let mut fast_faulty = 0usize;
        let mut fast_events = 0usize;
        for _ in 0..n {
            let node = fast.sample_node(&mut rng);
            fast_faulty += node.is_faulty() as usize;
            fast_events += node.events.len();
        }
        let mut ref_faulty = 0usize;
        let mut ref_events = 0usize;
        for _ in 0..n {
            let node = model.sample_node(&c, &mut rng);
            ref_faulty += node.is_faulty() as usize;
            ref_events += node.events.len();
        }
        let d_faulty = (fast_faulty as f64 - ref_faulty as f64).abs() / n as f64;
        let d_events = (fast_events as f64 - ref_events as f64).abs() / ref_events as f64;
        assert!(d_faulty < 0.01, "faulty-rate gap {d_faulty}");
        assert!(d_events < 0.05, "event-count gap {d_events}");
    }

    #[test]
    fn accelerated_class_uses_slow_path_at_10x() {
        let model = FaultModel::isca16(FitRates::cielo().scaled(10.0), 6.0);
        let s = FaultSampler::new(&model, &cfg());
        // At 100× acceleration and 10× FIT, the bit/word process mean is
        // ~0.76 — must be on the exact path.
        assert!(s.gates[0].iter().any(|g| g.slow));
        // The rest class stays on the gate path.
        assert!(s.gates[1].iter().all(|g| !g.slow));
    }

    #[test]
    fn events_remain_sorted() {
        let model = FaultModel::isca16(FitRates::cielo().scaled(10.0), 6.0);
        let s = FaultSampler::new(&model, &cfg());
        let mut rng = Rng64::seed_from_u64(3);
        for _ in 0..200 {
            let node = s.sample_node(&mut rng);
            for w in node.events.windows(2) {
                assert!(w[0].time_hours <= w[1].time_hours);
            }
        }
    }
}

#[cfg(test)]
mod multirank_tests {
    use super::*;
    use crate::modes::FitRates;
    use relaxfault_util::rng::Rng64;

    /// On DIMMs with several ranks, a multi-rank fault produces one region
    /// per rank at the same device position.
    #[test]
    fn multirank_spans_ranks_on_multirank_dimms() {
        let mut cfg = DramConfig::isca16_reliability();
        cfg.ranks_per_dimm = 2;
        cfg.rows = 32768; // keep per-DIMM capacity constant
        cfg.validate().unwrap();
        // Only the multi-rank process, cranked high.
        let mut rates = FitRates { fit: [[0.0; 2]; 6] };
        rates.fit[5][1] = 5000.0;
        let model = FaultModel::isca16(rates, 6.0);
        let sampler = FaultSampler::new(&model, &cfg);
        let mut rng = Rng64::seed_from_u64(4);
        let mut saw = false;
        for _ in 0..200 {
            let node = sampler.sample_node(&mut rng);
            for e in node.permanent() {
                assert_eq!(e.regions.len(), 2, "one region per rank");
                assert_eq!(e.regions[0].device, e.regions[1].device);
                assert_ne!(e.regions[0].rank.rank, e.regions[1].rank.rank);
                assert_eq!(
                    e.regions[0].rank.dimm_index(&cfg),
                    e.regions[1].rank.dimm_index(&cfg)
                );
                saw = true;
            }
        }
        assert!(saw, "expected at least one multi-rank fault");
    }
}
