//! Fast node-lifetime sampler.
//!
//! [`crate::FaultModel::sample_node`] draws one lognormal and one Poisson
//! per (device, fault-process) pair — 1,728 heavy samples per node for the
//! paper's geometry, nearly all of which return zero faults. This sampler
//! short-circuits the zero cases at two granularities:
//!
//! * **per cell** (one (device, process) pair): `q₀ = E_m[exp(−λm)]` is
//!   evaluated once per (process, acceleration class) by numeric
//!   quadrature over the lognormal mixing variable. When the gate fails
//!   (probability ≈ λ), `m` is drawn from the *size-biased* lognormal
//!   (the exact conditional in the λ→0 limit, error `O(λ²)`), and the
//!   remaining count from `Poisson(λm)`. Processes with
//!   `λ > SLOW_PATH_THRESHOLD` (FIT-accelerated devices at 10× rates)
//!   fall back to the exact two-stage draw, so the approximation only
//!   ever applies where it is provably negligible.
//! * **per node** (the zero-fault fast path): the per-cell gates compose
//!   into one precomputed `P(node lifetime has zero events)` =
//!   [`FaultSampler::p_clean`]. [`FaultSampler::trial_is_clean`] spends a
//!   *single* uniform draw on that aggregate gate — for the paper's
//!   default model ~87% of trials finish right there, with no region,
//!   event, or extent machinery touched. When the gate fails, the
//!   remaining lifetime is drawn from the exact conditional distribution
//!   given ≥ 1 event, by first-success decomposition: walk the DIMMs with
//!   the hazard `P(this dimm is first nonzero | none yet, ≥1 remaining)`,
//!   then walk the forced DIMM's cells the same way (using precomputed
//!   suffix clean-products), force the first nonzero cell's count to be
//!   ≥ 1, and sample everything after the first success unconditionally.
//!
//! The only approximation in the conditional path is reusing the
//! quadrature `q₀` for slow-path gates, whose true zero probability it
//! matches to the quadrature error (≪ 1e-6). Acceleration flags of clean
//! DIMMs are drawn from their exact posteriors so the bookkeeping
//! distribution is preserved too.
//!
//! `tests::matches_reference_sampler` and
//! `tests::clean_gate_matches_reference_zero_rate` check the fast and
//! reference samplers agree statistically.

use crate::inject::{FaultEvent, FaultModel, NodeFaults};
use crate::modes::{FaultMode, Transience, HOURS_PER_YEAR};
use crate::region::RegionList;
use relaxfault_dram::{DramConfig, RankId};
use relaxfault_util::dist::{poisson, LogNormal};
use relaxfault_util::rng::{u64_is_below, unit_f64_threshold, Rng};

/// Mean above which the gate approximation is abandoned for the exact
/// two-stage draw.
const SLOW_PATH_THRESHOLD: f64 = 0.02;

#[derive(Debug, Clone, Copy)]
struct ProcessGate {
    mode: FaultMode,
    transience: Transience,
    lambda: f64,
    /// P(N = 0) under the lognormal mixture.
    q0: f64,
    /// `q0` as an integer mantissa threshold (see
    /// [`relaxfault_util::rng::unit_f64_threshold`]): the fast-gate draw
    /// compares a raw `u64` against it, bit-identical to the `f64`
    /// compare but without the int→float conversion.
    q0_threshold: u64,
    /// Whether to use the exact slow path.
    slow: bool,
}

/// Precomputed sampler for one fault model and geometry.
///
/// # Examples
///
/// ```
/// use relaxfault_util::rng::Rng64;
/// use relaxfault_dram::DramConfig;
/// use relaxfault_faults::{FaultModel, FitRates};
/// use relaxfault_faults::sampler::FaultSampler;
///
/// let cfg = DramConfig::isca16_reliability();
/// let model = FaultModel::isca16(FitRates::cielo(), 6.0);
/// let sampler = FaultSampler::new(&model, &cfg);
/// let mut rng = Rng64::seed_from_u64(1);
/// let node = sampler.sample_node(&mut rng);
/// assert!(node.events.len() < 100);
/// // Most lifetimes are event-free, and the sampler knows exactly
/// // how many: one uniform draw decides it.
/// assert!(sampler.p_clean() > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct FaultSampler {
    model: FaultModel,
    cfg: DramConfig,
    hours: f64,
    /// Gates for the acceleration factor (index 0) and the adjusted rest
    /// factor (index 1).
    gates: [Vec<ProcessGate>; 2],
    factors: [f64; 2],
    /// Lognormal of the rate multiplier, and its size-biased counterpart.
    lognorm: Option<(LogNormal, LogNormal)>,
    /// Per class: P(every cell of one DIMM is event-free).
    q_dimm: [f64; 2],
    /// Per class: suffix clean-products over one DIMM's cell sequence
    /// (rank-major, then device, then gate); `suffix[c][k]` =
    /// P(cells `k..` are all zero), with a trailing `1.0` sentinel.
    suffix: [Vec<f64>; 2],
    /// P(one DIMM is clean) when the node is not accelerated:
    /// `p_dimm_acc · q_dimm[0] + (1 − p_dimm_acc) · q_dimm[1]`.
    e_dimm: f64,
    /// P(the whole node lifetime has zero events) — the fast-path gate.
    q_node: f64,
    /// `q_node` as an integer mantissa threshold: comparing a raw `u64`
    /// draw against it is bit-identical to the `f64` gate compare (see
    /// [`relaxfault_util::rng::unit_f64_threshold`]).
    clean_threshold: u64,
}

impl FaultSampler {
    /// Precomputes the gates for a model/geometry pair.
    pub fn new(model: &FaultModel, cfg: &DramConfig) -> Self {
        let hours = model.years * HOURS_PER_YEAR;
        let v = &model.variation;
        let factors = [v.accel_factor, v.adjusted_rest_factor()];
        let lognorm = if v.device_cv > 0.0 {
            let base = LogNormal::from_mean_cv(1.0, v.device_cv);
            // Size-biased lognormal: same sigma, mu shifted by sigma^2.
            let sigma = base.sigma();
            let biased_mean = (base.mu() + 1.5 * sigma * sigma).exp();
            let biased = LogNormal::from_mean_cv(biased_mean, v.device_cv);
            Some((base, biased))
        } else {
            None
        };
        let make_gates = |factor: f64| -> Vec<ProcessGate> {
            model
                .rates
                .processes()
                .map(|(mode, transience, fit)| {
                    let lambda = fit * 1e-9 * hours * factor;
                    let q0 = match &lognorm {
                        None => (-lambda).exp(),
                        Some((base, _)) => quad_q0(lambda, base),
                    };
                    ProcessGate {
                        mode,
                        transience,
                        lambda,
                        q0,
                        q0_threshold: unit_f64_threshold(q0),
                        slow: lambda > SLOW_PATH_THRESHOLD,
                    }
                })
                .collect()
        };
        let gates = [make_gates(factors[0]), make_gates(factors[1])];

        // Zero-fault fast-path precomputation: fold the per-cell gates
        // into per-DIMM and per-node clean probabilities, and suffix
        // products for the conditional first-success walk.
        let cells_per_dimm =
            (cfg.ranks_per_dimm * cfg.devices_per_rank()) as usize * gates[0].len();
        let mut q_dimm = [1.0f64; 2];
        let mut suffix = [Vec::new(), Vec::new()];
        for class in 0..2 {
            let g = &gates[class];
            let mut s = vec![1.0f64; cells_per_dimm + 1];
            for k in (0..cells_per_dimm).rev() {
                s[k] = s[k + 1] * g[k % g.len()].q0;
            }
            q_dimm[class] = s[0];
            suffix[class] = s;
        }
        let d = cfg.dimms_per_node() as i32;
        let e_dimm = v.accel_dimm_fraction * q_dimm[0] + (1.0 - v.accel_dimm_fraction) * q_dimm[1];
        let q_node = v.accel_node_fraction * q_dimm[0].powi(d)
            + (1.0 - v.accel_node_fraction) * e_dimm.powi(d);

        Self {
            model: *model,
            cfg: *cfg,
            hours,
            gates,
            factors,
            lognorm,
            q_dimm,
            suffix,
            e_dimm,
            q_node,
            clean_threshold: unit_f64_threshold(q_node),
        }
    }

    /// Exact probability that a node lifetime contains zero fault events
    /// (transient or permanent) — the zero-fault fast-path gate.
    pub fn p_clean(&self) -> f64 {
        self.q_node
    }

    /// Spends one uniform draw on the aggregate zero-fault gate. This is
    /// defined to be the *first* draw of [`FaultSampler::sample_node`]'s
    /// stream: callers that observe `true` may skip sampling entirely and
    /// get bit-identical results to a full `sample_node` call (which
    /// would have returned an empty lifetime from the same stream).
    pub fn trial_is_clean<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen::<f64>() < self.q_node
    }

    /// The zero-fault verdict [`FaultSampler::trial_is_clean`] would reach
    /// from a stream whose first raw draw is `first`, computed without
    /// constructing the generator or touching floating point. The
    /// bit-sliced engine packs these verdicts into lane masks; equivalence
    /// with the gate draw is pinned by
    /// `tests::first_draw_gate_matches_trial_is_clean`.
    #[inline]
    pub fn trial_is_clean_from_first(&self, first: u64) -> bool {
        u64_is_below(first, self.clean_threshold)
    }

    /// Samples one node lifetime (drop-in replacement for
    /// [`FaultModel::sample_node`]).
    pub fn sample_node<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeFaults {
        let mut out = NodeFaults::default();
        self.sample_node_into(rng, &mut out);
        out
    }

    /// Samples one node lifetime into a caller-owned buffer, reusing its
    /// allocations. Equivalent to [`FaultSampler::sample_node`].
    pub fn sample_node_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut NodeFaults) {
        out.clear();
        if !self.trial_is_clean(rng) {
            self.sample_faulty_into(rng, out);
        }
    }

    /// Samples a node lifetime *conditioned on having at least one event*,
    /// continuing the stream after a failed [`FaultSampler::trial_is_clean`]
    /// gate. Calling the gate and then this on one stream is exactly
    /// [`FaultSampler::sample_node_into`].
    pub fn sample_faulty_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut NodeFaults) {
        out.clear();
        let v = &self.model.variation;
        let d = self.cfg.dimms_per_node();
        let p_d = v.accel_dimm_fraction;

        // Node acceleration from its posterior given ≥ 1 event.
        let q_acc_node = self.q_dimm[0].powi(d as i32);
        let p_acc = if v.accel_node_fraction > 0.0 {
            v.accel_node_fraction * (1.0 - q_acc_node) / (1.0 - self.q_node)
        } else {
            0.0
        };
        let node_acc = p_acc > 0.0 && rng.gen::<f64>() < p_acc;
        out.node_accelerated = node_acc;

        let mut forced_done = false;
        for dimm_flat in 0..d {
            if forced_done {
                // Everything after the first success is unconditional —
                // identical to the legacy per-DIMM sampling.
                let dimm_acc = p_d > 0.0 && rng.gen_bool(p_d);
                if dimm_acc {
                    out.accelerated_dimms.push(dimm_flat);
                }
                let class = if node_acc || dimm_acc { 0 } else { 1 };
                if self.factors[class] != 0.0 {
                    self.sample_dimm_unconditional(class, dimm_flat, rng, out);
                }
                continue;
            }
            let remaining = (d - dimm_flat) as i32;
            if node_acc {
                // Class is 0 regardless of the dimm flag, so the flag is
                // independent bookkeeping.
                let dimm_acc = p_d > 0.0 && rng.gen_bool(p_d);
                if dimm_acc {
                    out.accelerated_dimms.push(dimm_flat);
                }
                let e = self.q_dimm[0];
                let p_forced = (1.0 - e) / (1.0 - e.powi(remaining));
                if rng.gen::<f64>() < p_forced {
                    forced_done = true;
                    self.sample_dimm_forced(0, dimm_flat, rng, out);
                }
            } else {
                let e = self.e_dimm;
                let p_forced = (1.0 - e) / (1.0 - e.powi(remaining));
                if rng.gen::<f64>() < p_forced {
                    // The forced DIMM's acceleration flag, given ≥ 1 event.
                    let p_acc = if p_d > 0.0 {
                        p_d * (1.0 - self.q_dimm[0]) / (1.0 - e)
                    } else {
                        0.0
                    };
                    let dimm_acc = p_acc > 0.0 && rng.gen::<f64>() < p_acc;
                    if dimm_acc {
                        out.accelerated_dimms.push(dimm_flat);
                    }
                    forced_done = true;
                    self.sample_dimm_forced(if dimm_acc { 0 } else { 1 }, dimm_flat, rng, out);
                } else {
                    // Clean DIMM: acceleration flag from its posterior.
                    let p_acc = if p_d > 0.0 {
                        p_d * self.q_dimm[0] / e
                    } else {
                        0.0
                    };
                    if p_acc > 0.0 && rng.gen::<f64>() < p_acc {
                        out.accelerated_dimms.push(dimm_flat);
                    }
                }
            }
        }
        debug_assert!(forced_done, "conditional walk must force one DIMM");
        out.events.sort_by(|a, b| {
            a.time_hours
                .partial_cmp(&b.time_hours)
                .expect("finite times")
        });
    }

    /// Legacy unconditional scan of one DIMM's cells.
    fn sample_dimm_unconditional<R: Rng + ?Sized>(
        &self,
        class: usize,
        dimm_flat: u32,
        rng: &mut R,
        out: &mut NodeFaults,
    ) {
        let cfg = &self.cfg;
        for rank_in_dimm in 0..cfg.ranks_per_dimm {
            let rank = RankId {
                channel: dimm_flat / cfg.dimms_per_channel,
                dimm: dimm_flat % cfg.dimms_per_channel,
                rank: rank_in_dimm,
            };
            for device in 0..cfg.devices_per_rank() {
                for gate in &self.gates[class] {
                    let count = self.sample_count(gate, rng);
                    self.emit_events(gate, count, rank, device, rng, out);
                }
            }
        }
    }

    /// Scan of one DIMM's cells conditioned on the DIMM containing the
    /// node's first nonzero cell: first-success hazards up to the forced
    /// cell, unconditional sampling after it.
    fn sample_dimm_forced<R: Rng + ?Sized>(
        &self,
        class: usize,
        dimm_flat: u32,
        rng: &mut R,
        out: &mut NodeFaults,
    ) {
        let cfg = &self.cfg;
        let suffix = &self.suffix[class];
        let mut cell = 0usize;
        let mut forced = false;
        for rank_in_dimm in 0..cfg.ranks_per_dimm {
            let rank = RankId {
                channel: dimm_flat / cfg.dimms_per_channel,
                dimm: dimm_flat % cfg.dimms_per_channel,
                rank: rank_in_dimm,
            };
            for device in 0..cfg.devices_per_rank() {
                for gate in &self.gates[class] {
                    if forced {
                        let count = self.sample_count(gate, rng);
                        self.emit_events(gate, count, rank, device, rng, out);
                    } else if gate.q0 < 1.0 {
                        // P(this cell is the first nonzero | none yet,
                        // ≥ 1 in the remaining cells). At the last
                        // possible cell this is exactly 1.
                        let p = (1.0 - gate.q0) / (1.0 - suffix[cell]);
                        if rng.gen::<f64>() < p {
                            forced = true;
                            let count = self.sample_count_nonzero(gate, rng);
                            self.emit_events(gate, count, rank, device, rng, out);
                        }
                    }
                    // q0 == 1 cells (λ == 0) consume no randomness on
                    // either path.
                    cell += 1;
                }
            }
        }
        debug_assert!(forced, "forced DIMM produced no event");
    }

    fn emit_events<R: Rng + ?Sized>(
        &self,
        gate: &ProcessGate,
        count: u64,
        rank: RankId,
        device: u32,
        rng: &mut R,
        out: &mut NodeFaults,
    ) {
        for _ in 0..count {
            let time_hours = rng.gen::<f64>() * self.hours;
            let extent = self.model.geometry.sample_extent(rng, gate.mode, &self.cfg);
            let event = FaultEvent {
                time_hours,
                mode: gate.mode,
                transience: gate.transience,
                regions: self.regions_for(rank, device, extent, gate.mode),
            };
            crate::inject::record_injection(&event);
            out.events.push(event);
        }
    }

    fn sample_count<R: Rng + ?Sized>(&self, gate: &ProcessGate, rng: &mut R) -> u64 {
        if gate.lambda == 0.0 {
            return 0;
        }
        if gate.slow {
            // Exact two-stage draw for non-negligible means.
            let m = match &self.lognorm {
                None => 1.0,
                Some((base, _)) => base.sample(rng),
            };
            return poisson(rng, gate.lambda * m);
        }
        if u64_is_below(rng.next_u64(), gate.q0_threshold) {
            return 0;
        }
        self.sample_count_nonzero(gate, rng)
    }

    /// The count distribution conditioned on being nonzero: the gate
    /// path's own ≥ 1 branch for fast gates, exact rejection for slow
    /// ones (accepts with probability `1 − q0` per attempt, so the loop
    /// is short for every gate past the slow threshold).
    fn sample_count_nonzero<R: Rng + ?Sized>(&self, gate: &ProcessGate, rng: &mut R) -> u64 {
        if gate.slow {
            loop {
                let m = match &self.lognorm {
                    None => 1.0,
                    Some((base, _)) => base.sample(rng),
                };
                let count = poisson(rng, gate.lambda * m);
                if count > 0 {
                    return count;
                }
            }
        }
        // N >= 1: the conditional mixing variable is size-biased in the
        // small-λ limit.
        match &self.lognorm {
            None => 1 + poisson(rng, gate.lambda),
            Some((_, biased)) => {
                let m = biased.sample(rng);
                1 + poisson(rng, gate.lambda * m)
            }
        }
    }

    fn regions_for(
        &self,
        rank: RankId,
        device: u32,
        extent: crate::region::Extent,
        mode: FaultMode,
    ) -> RegionList {
        if mode == FaultMode::MultiRank && self.cfg.ranks_per_dimm > 1 {
            (0..self.cfg.ranks_per_dimm)
                .map(|rk| crate::region::FaultRegion {
                    rank: RankId { rank: rk, ..rank },
                    device,
                    extent,
                })
                .collect()
        } else {
            RegionList::one(crate::region::FaultRegion {
                rank,
                device,
                extent,
            })
        }
    }
}

/// `E[exp(-λ e^{μ+σZ})]` by trapezoid quadrature over the standard normal.
fn quad_q0(lambda: f64, base: &LogNormal) -> f64 {
    if lambda == 0.0 {
        return 1.0;
    }
    let (mu, sigma) = (base.mu(), base.sigma());
    let mut acc = 0.0;
    let mut norm = 0.0;
    let steps = 400;
    let z_max = 8.0;
    for i in 0..=steps {
        let z = -z_max + 2.0 * z_max * i as f64 / steps as f64;
        let w = (-0.5 * z * z).exp() * if i == 0 || i == steps { 0.5 } else { 1.0 };
        let m = (mu + sigma * z).exp();
        acc += w * (-lambda * m).exp();
        norm += w;
    }
    acc / norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::FitRates;
    use relaxfault_util::rng::Rng64;

    fn cfg() -> DramConfig {
        DramConfig::isca16_reliability()
    }

    #[test]
    fn q0_matches_closed_form_without_variation() {
        let model = FaultModel::uniform(FitRates::cielo(), 6.0);
        let s = FaultSampler::new(&model, &cfg());
        for gate in &s.gates[1] {
            assert!((gate.q0 - (-gate.lambda).exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn q0_quadrature_sane() {
        let base = LogNormal::from_mean_cv(1.0, 0.5);
        // Small λ: q0 ≈ 1 − λ.
        let q = quad_q0(1e-4, &base);
        assert!((q - (1.0 - 1e-4)).abs() < 1e-6, "q0 {q}");
        // Large λ: q0 well below exp(-λ·small)...
        assert!(quad_q0(5.0, &base) < 0.1);
        assert_eq!(quad_q0(0.0, &base), 1.0);
    }

    #[test]
    fn clean_probability_composes_from_gates() {
        // Without variation or acceleration, P(clean) has a closed form:
        // exp(-Σλ) over every cell of the node.
        let model = FaultModel::uniform(FitRates::cielo(), 6.0);
        let c = cfg();
        let s = FaultSampler::new(&model, &c);
        let lambda_total: f64 = s.gates[1].iter().map(|g| g.lambda).sum();
        let expected = (-lambda_total * c.devices_per_node() as f64).exp();
        assert!(
            (s.p_clean() - expected).abs() < 1e-9,
            "q_node {} vs closed form {}",
            s.p_clean(),
            expected
        );
    }

    #[test]
    fn clean_gate_matches_reference_zero_rate() {
        // The aggregate gate probability must match the reference
        // sampler's empirical zero-event rate.
        let model = FaultModel::isca16(FitRates::cielo(), 6.0);
        let c = cfg();
        let s = FaultSampler::new(&model, &c);
        assert!((0.5..1.0).contains(&s.p_clean()), "p_clean {}", s.p_clean());
        let n = 40_000;
        let mut rng = Rng64::seed_from_u64(777);
        let clean = (0..n)
            .filter(|_| model.sample_node(&c, &mut rng).events.is_empty())
            .count();
        let frac = clean as f64 / n as f64;
        assert!(
            (frac - s.p_clean()).abs() < 0.01,
            "empirical clean rate {frac} vs gate {}",
            s.p_clean()
        );
    }

    #[test]
    fn gate_then_conditional_reproduces_sample_node() {
        // The engine's fast path (gate draw, then conditional sampling
        // only when the gate fails) must be bit-identical to a plain
        // sample_node call on the same stream.
        let model = FaultModel::isca16(FitRates::cielo(), 6.0);
        let s = FaultSampler::new(&model, &cfg());
        let mut saw_faulty = 0;
        for seed in 0..300u64 {
            let mut full_rng = Rng64::seed_from_u64(seed);
            let full = s.sample_node(&mut full_rng);
            let mut gated_rng = Rng64::seed_from_u64(seed);
            let mut gated = NodeFaults::default();
            if !s.trial_is_clean(&mut gated_rng) {
                s.sample_faulty_into(&mut gated_rng, &mut gated);
                saw_faulty += 1;
            }
            assert_eq!(full, gated, "seed {seed} diverged");
        }
        assert!(saw_faulty > 10, "only {saw_faulty} faulty trials");
    }

    #[test]
    fn first_draw_gate_matches_trial_is_clean() {
        // The lane-mask gate (integer compare on the stream's first raw
        // draw) must agree with the f64 gate draw on every seed — it is
        // the same decision, so the bit-sliced engine can skip generator
        // construction for clean trials.
        use relaxfault_util::rng::first_u64_from_seed;
        let model = FaultModel::isca16(FitRates::cielo(), 6.0);
        let s = FaultSampler::new(&model, &cfg());
        let mut faulty = 0;
        for seed in 0..5000u64 {
            let mut rng = Rng64::seed_from_u64(seed);
            let drawn = s.trial_is_clean(&mut rng);
            let masked = s.trial_is_clean_from_first(first_u64_from_seed(seed));
            assert_eq!(drawn, masked, "seed {seed}");
            faulty += !drawn as u32;
        }
        assert!(faulty > 100, "only {faulty} faulty gates exercised");
    }

    #[test]
    fn matches_reference_sampler() {
        let model = FaultModel::isca16(FitRates::cielo(), 6.0);
        let c = cfg();
        let fast = FaultSampler::new(&model, &c);
        // Large enough that the 5% event-count tolerance sits ~3 standard
        // deviations out for the two independent estimates.
        let n = 80_000;
        let mut rng = Rng64::seed_from_u64(555);
        let mut fast_faulty = 0usize;
        let mut fast_events = 0usize;
        for _ in 0..n {
            let node = fast.sample_node(&mut rng);
            fast_faulty += node.is_faulty() as usize;
            fast_events += node.events.len();
        }
        let mut ref_faulty = 0usize;
        let mut ref_events = 0usize;
        for _ in 0..n {
            let node = model.sample_node(&c, &mut rng);
            ref_faulty += node.is_faulty() as usize;
            ref_events += node.events.len();
        }
        let d_faulty = (fast_faulty as f64 - ref_faulty as f64).abs() / n as f64;
        let d_events = (fast_events as f64 - ref_events as f64).abs() / ref_events as f64;
        assert!(d_faulty < 0.01, "faulty-rate gap {d_faulty}");
        assert!(d_events < 0.05, "event-count gap {d_events}");
    }

    #[test]
    fn accelerated_class_uses_slow_path_at_10x() {
        let model = FaultModel::isca16(FitRates::cielo().scaled(10.0), 6.0);
        let s = FaultSampler::new(&model, &cfg());
        // At 100× acceleration and 10× FIT, the bit/word process mean is
        // ~0.76 — must be on the exact path.
        assert!(s.gates[0].iter().any(|g| g.slow));
        // The rest class stays on the gate path.
        assert!(s.gates[1].iter().all(|g| !g.slow));
    }

    #[test]
    fn events_remain_sorted() {
        let model = FaultModel::isca16(FitRates::cielo().scaled(10.0), 6.0);
        let s = FaultSampler::new(&model, &cfg());
        let mut rng = Rng64::seed_from_u64(3);
        for _ in 0..200 {
            let node = s.sample_node(&mut rng);
            for w in node.events.windows(2) {
                assert!(w[0].time_hours <= w[1].time_hours);
            }
        }
    }

    #[test]
    fn buffer_reuse_is_equivalent() {
        let model = FaultModel::isca16(FitRates::cielo().scaled(10.0), 6.0);
        let s = FaultSampler::new(&model, &cfg());
        let mut rng_a = Rng64::seed_from_u64(21);
        let mut rng_b = Rng64::seed_from_u64(21);
        let mut buf = NodeFaults::default();
        for _ in 0..200 {
            let fresh = s.sample_node(&mut rng_a);
            s.sample_node_into(&mut rng_b, &mut buf);
            assert_eq!(fresh, buf);
        }
    }
}

#[cfg(test)]
mod multirank_tests {
    use super::*;
    use crate::modes::FitRates;
    use relaxfault_util::rng::Rng64;

    /// On DIMMs with several ranks, a multi-rank fault produces one region
    /// per rank at the same device position.
    #[test]
    fn multirank_spans_ranks_on_multirank_dimms() {
        let mut cfg = DramConfig::isca16_reliability();
        cfg.ranks_per_dimm = 2;
        cfg.rows = 32768; // keep per-DIMM capacity constant
        cfg.validate().unwrap();
        // Only the multi-rank process, cranked high.
        let mut rates = FitRates { fit: [[0.0; 2]; 6] };
        rates.fit[5][1] = 5000.0;
        let model = FaultModel::isca16(rates, 6.0);
        let sampler = FaultSampler::new(&model, &cfg);
        let mut rng = Rng64::seed_from_u64(4);
        let mut saw = false;
        for _ in 0..200 {
            let node = sampler.sample_node(&mut rng);
            for e in node.permanent() {
                assert_eq!(e.regions.len(), 2, "one region per rank");
                assert_eq!(e.regions[0].device, e.regions[1].device);
                assert_ne!(e.regions[0].rank.rank, e.regions[1].rank.rank);
                assert_eq!(
                    e.regions[0].rank.dimm_index(&cfg),
                    e.regions[1].rank.dimm_index(&cfg)
                );
                saw = true;
            }
        }
        assert!(saw, "expected at least one multi-rank fault");
    }
}
