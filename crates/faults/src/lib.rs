//! DRAM fault modes, field-study FIT rates, fault regions, and the refined
//! Monte Carlo injection model of the RelaxFault paper (§4.1.2).
//!
//! * [`modes`] — the fault taxonomy of the field studies the paper builds
//!   on (single bit/word, row, column, bank, multi-bank, multi-rank ×
//!   transient/permanent) and the published FIT rates (Table 2 /
//!   Figure 2).
//! * [`region`] — *structured* fault footprints in device coordinates.
//!   Every fault is a union of axis-aligned rectangles over
//!   (bank, row, column-block), which keeps overlap tests (for DUE/SDC
//!   analysis) and repair-line counting analytic instead of enumerating
//!   millions of cells.
//! * [`geometry`] — the physical-extent assumptions (how many rows a "bank
//!   fault" really touches, how far a "column fault" reaches) that field
//!   studies do not publish; every knob is explicit and documented.
//! * [`arrivals`] — streaming arrival cursors that replay a sampled
//!   lifetime epoch by epoch; the fleet simulator's dirty-set is keyed on
//!   them.
//! * [`inject`] — the paper's refined fault-injection methodology:
//!   independent Poisson processes per (device, fault mode) with lognormal
//!   device-to-device rate variation and node/DIMM FIT acceleration
//!   (Equation 1).
//!
//! # Examples
//!
//! ```
//! use relaxfault_util::rng::Rng64;
//! use relaxfault_dram::DramConfig;
//! use relaxfault_faults::{FaultModel, FitRates};
//!
//! let cfg = DramConfig::isca16_reliability();
//! let model = FaultModel::isca16(FitRates::cielo(), 6.0);
//! let mut rng = Rng64::seed_from_u64(42);
//! let node = model.sample_node(&cfg, &mut rng);
//! // Most nodes are fault-free over 6 years (~14% are faulty).
//! assert!(node.events.len() < 100);
//! ```

pub mod arrivals;
pub mod geometry;
pub mod inject;
pub mod modes;
pub mod region;
pub mod sampler;

pub use arrivals::ArrivalCursor;
pub use geometry::FaultGeometry;
pub use inject::{FaultEvent, FaultModel, NodeFaults, VariationModel};
pub use modes::{FaultMode, FitRates, Transience};
pub use region::{BankSet, Extent, FaultRegion, IdxSet, Rect, RegionList};
pub use sampler::FaultSampler;
