//! Fault taxonomy and field-study FIT rates (paper Table 2 / Figure 2).

/// The fault modes reported by the DDR3 field studies the paper builds on
/// (Sridharan et al., Cielo and Hopper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultMode {
    /// One bit, or a few bits within one transfer word.
    SingleBitWord,
    /// One row address within one bank of one device.
    SingleRow,
    /// One column address within one bank of one device.
    SingleColumn,
    /// A region confined to one bank (from a row cluster up to the whole
    /// bank).
    SingleBank,
    /// Multiple whole banks of one device.
    MultiBank,
    /// A fault visible across multiple ranks (modelled as a whole-device
    /// fault; see `FaultGeometry`).
    MultiRank,
}

impl FaultMode {
    /// All modes, in the order the paper's Table 2 lists them.
    pub const ALL: [FaultMode; 6] = [
        FaultMode::SingleBitWord,
        FaultMode::SingleRow,
        FaultMode::SingleColumn,
        FaultMode::SingleBank,
        FaultMode::MultiBank,
        FaultMode::MultiRank,
    ];

    /// Kebab-case slug used in metric names and machine-readable sinks.
    pub fn key(&self) -> &'static str {
        match self {
            FaultMode::SingleBitWord => "single-bit-word",
            FaultMode::SingleRow => "single-row",
            FaultMode::SingleColumn => "single-column",
            FaultMode::SingleBank => "single-bank",
            FaultMode::MultiBank => "multi-bank",
            FaultMode::MultiRank => "multi-rank",
        }
    }

    /// Short label used in harness output.
    pub fn label(&self) -> &'static str {
        match self {
            FaultMode::SingleBitWord => "single bit/word",
            FaultMode::SingleRow => "single row",
            FaultMode::SingleColumn => "single column",
            FaultMode::SingleBank => "single bank",
            FaultMode::MultiBank => "multiple banks",
            FaultMode::MultiRank => "multiple ranks",
        }
    }
}

impl std::fmt::Display for FaultMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether a fault persists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transience {
    /// Soft fault: active once, leaves no damage (scrub + ECC clears it).
    Transient,
    /// Hard fault (intermittent or permanent): persists until repaired or
    /// the module is replaced.
    Permanent,
}

/// Per-device FIT rates (failures per 10⁹ device-hours) by mode and
/// transience.
///
/// # Examples
///
/// ```
/// use relaxfault_faults::{FaultMode, FitRates, Transience};
/// let r = FitRates::cielo();
/// assert_eq!(r.rate(FaultMode::SingleBitWord, Transience::Permanent), 13.0);
/// assert!((r.total_permanent() - 20.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitRates {
    /// `[transient, permanent]` FIT for each mode in `FaultMode::ALL` order.
    pub fit: [[f64; 2]; 6],
}

impl FitRates {
    /// Table 2: the Cielo rates the paper evaluates with.
    pub fn cielo() -> Self {
        Self {
            fit: [
                [14.5, 13.0], // single bit/word
                [2.3, 2.4],   // single row
                [1.6, 1.9],   // single column
                [1.6, 2.2],   // single bank
                [0.1, 0.3],   // multiple banks
                [0.2, 0.2],   // multiple ranks
            ],
        }
    }

    /// Figure 2's Hopper system (NERSC), read from the published chart;
    /// the paper confirms its results are insensitive to which system's
    /// rates are applied.
    pub fn hopper() -> Self {
        Self {
            fit: [
                [11.0, 10.5],
                [1.4, 4.2],
                [1.4, 2.6],
                [1.2, 3.0],
                [0.2, 0.9],
                [0.1, 0.4],
            ],
        }
    }

    /// Uniformly scales every rate (the paper's 10× FIT experiments).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0);
        let mut fit = self.fit;
        for row in &mut fit {
            row[0] *= factor;
            row[1] *= factor;
        }
        Self { fit }
    }

    /// FIT of one (mode, transience) process.
    pub fn rate(&self, mode: FaultMode, transience: Transience) -> f64 {
        let t = match transience {
            Transience::Transient => 0,
            Transience::Permanent => 1,
        };
        self.fit[mode as usize][t]
    }

    /// Sum of permanent-fault FITs.
    pub fn total_permanent(&self) -> f64 {
        self.fit.iter().map(|r| r[1]).sum()
    }

    /// Sum of transient-fault FITs.
    pub fn total_transient(&self) -> f64 {
        self.fit.iter().map(|r| r[0]).sum()
    }

    /// Sum over all processes.
    pub fn total(&self) -> f64 {
        self.total_permanent() + self.total_transient()
    }

    /// Iterates `(mode, transience, fit)` over all 12 processes.
    pub fn processes(&self) -> impl Iterator<Item = (FaultMode, Transience, f64)> + '_ {
        FaultMode::ALL.into_iter().flat_map(move |m| {
            [
                (
                    m,
                    Transience::Transient,
                    self.rate(m, Transience::Transient),
                ),
                (
                    m,
                    Transience::Permanent,
                    self.rate(m, Transience::Permanent),
                ),
            ]
        })
    }
}

/// Hours in one year (the paper's exposure unit is a 6-year lifetime).
pub const HOURS_PER_YEAR: f64 = 8760.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cielo_totals_match_paper_background() {
        // §2: hard faults ~13–20 FIT, soft faults ~10–20 FIT.
        let r = FitRates::cielo();
        assert!((r.total_permanent() - 20.0).abs() < 1e-9);
        assert!((r.total_transient() - 20.3).abs() < 1e-9);
    }

    #[test]
    fn one_new_hard_fault_every_5700_device_years() {
        // §2's sanity arithmetic: 20 FIT ⇒ one hard fault per ~5,700 years
        // of one device's operation.
        let r = FitRates::cielo();
        let years = 1e9 / (r.total_permanent() * HOURS_PER_YEAR);
        assert!((years - 5700.0).abs() < 100.0, "got {years}");
    }

    #[test]
    fn scaling_multiplies_everything() {
        let r = FitRates::cielo().scaled(10.0);
        assert!((r.total() - 403.0).abs() < 1e-9);
        assert_eq!(r.rate(FaultMode::SingleRow, Transience::Permanent), 24.0);
    }

    #[test]
    fn processes_cover_all_modes() {
        let r = FitRates::cielo();
        let v: Vec<_> = r.processes().collect();
        assert_eq!(v.len(), 12);
        let sum: f64 = v.iter().map(|(_, _, f)| f).sum();
        assert!((sum - r.total()).abs() < 1e-9);
    }

    #[test]
    fn permanent_coarse_faults_are_a_minority() {
        // The repair-coverage asymptote depends on this: multi-bank and
        // multi-rank faults are ~2.5% of permanent faults.
        let r = FitRates::cielo();
        let coarse = r.rate(FaultMode::MultiBank, Transience::Permanent)
            + r.rate(FaultMode::MultiRank, Transience::Permanent);
        assert!(coarse / r.total_permanent() < 0.03);
    }

    #[test]
    fn mode_labels_are_unique() {
        let mut labels: Vec<_> = FaultMode::ALL.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
        let mut keys: Vec<_> = FaultMode::ALL.iter().map(|m| m.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 6);
        assert!(keys.iter().all(|k| !k.contains(' ') && !k.contains('/')));
    }
}
