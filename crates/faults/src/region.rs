//! Structured fault footprints in device coordinates.
//!
//! A fault's footprint is one axis-aligned rectangle over
//! `(bank, row, column-block)` within one device of one rank (multi-rank
//! faults carry one region — and therefore one rectangle — per rank).
//! Keeping the structure explicit lets the ECC model test codeword
//! overlap between faults on different devices analytically, and lets the
//! repair planner count/enumerate repair lines without walking millions
//! of cells. [`Extent::footprint`] returns the [`Rect`] by value — no
//! heap allocation — because it sits on the hot path of both the ECC
//! arrival classifier and the planners' `lines_needed` pre-checks.

use relaxfault_dram::{DramConfig, RankId};

/// A set of indices along one axis (rows or column-blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdxSet {
    /// Every index in `0..domain`.
    All {
        /// Size of the axis domain.
        domain: u32,
    },
    /// A contiguous range `start..start+count`.
    Range {
        /// First index.
        start: u32,
        /// Number of indices.
        count: u32,
    },
    /// A single index.
    One(u32),
}

impl IdxSet {
    /// Number of indices in the set.
    pub fn len(&self) -> u64 {
        match *self {
            IdxSet::All { domain } => domain as u64,
            IdxSet::Range { count, .. } => count as u64,
            IdxSet::One(_) => 1,
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `i` is in the set.
    pub fn contains(&self, i: u32) -> bool {
        match *self {
            IdxSet::All { domain } => i < domain,
            IdxSet::Range { start, count } => i >= start && i - start < count,
            IdxSet::One(v) => i == v,
        }
    }

    /// Intersection with another set (`None` if disjoint).
    pub fn intersect(&self, other: &IdxSet) -> Option<IdxSet> {
        let (s1, e1) = self.bounds();
        let (s2, e2) = other.bounds();
        let s = s1.max(s2);
        let e = e1.min(e2);
        if s >= e {
            return None;
        }
        Some(if e - s == 1 {
            IdxSet::One(s)
        } else {
            IdxSet::Range {
                start: s,
                count: e - s,
            }
        })
    }

    /// `(start, end)` half-open bounds of the set.
    fn bounds(&self) -> (u32, u32) {
        match *self {
            IdxSet::All { domain } => (0, domain),
            IdxSet::Range { start, count } => (start, start.saturating_add(count)),
            IdxSet::One(v) => (v, v + 1),
        }
    }

    /// Iterates the indices.
    pub fn iter(&self) -> impl Iterator<Item = u32> {
        let (s, e) = self.bounds();
        s..e
    }

    /// Maps the set through integer division by `q` (e.g. column-block →
    /// column-group for the RelaxFault coalescer). The result covers every
    /// quotient any member maps to.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn divided(&self, q: u32) -> IdxSet {
        assert!(q > 0);
        match *self {
            IdxSet::All { domain } => IdxSet::All {
                domain: domain.div_ceil(q),
            },
            IdxSet::Range { start, count } => {
                let first = start / q;
                let last = (start + count - 1) / q;
                if first == last {
                    IdxSet::One(first)
                } else {
                    IdxSet::Range {
                        start: first,
                        count: last - first + 1,
                    }
                }
            }
            IdxSet::One(v) => IdxSet::One(v / q),
        }
    }
}

/// A set of banks, as a bitmask (devices have ≤ 32 banks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankSet(pub u32);

impl BankSet {
    /// A single bank.
    pub fn one(bank: u32) -> Self {
        assert!(bank < 32);
        BankSet(1 << bank)
    }

    /// All `n` banks.
    pub fn all(n: u32) -> Self {
        assert!(n <= 32 && n > 0);
        BankSet(if n == 32 { u32::MAX } else { (1 << n) - 1 })
    }

    /// Number of banks in the set.
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Intersection.
    pub fn intersect(&self, other: &BankSet) -> BankSet {
        BankSet(self.0 & other.0)
    }

    /// Iterates bank indices.
    pub fn iter(&self) -> impl Iterator<Item = u32> {
        let bits = self.0;
        (0..32).filter(move |b| bits & (1 << b) != 0)
    }
}

/// One axis-aligned rectangle of faulty blocks within a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Banks the rectangle covers.
    pub banks: BankSet,
    /// Rows covered within each bank.
    pub rows: IdxSet,
    /// Column-blocks covered within each row.
    pub colblocks: IdxSet,
}

impl Rect {
    /// Number of (bank, row, colblock) blocks covered.
    pub fn block_count(&self) -> u64 {
        self.banks.len() as u64 * self.rows.len() * self.colblocks.len()
    }

    /// Whether two rectangles share a block.
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.banks.intersect(&other.banks).is_empty()
            && self.rows.intersect(&other.rows).is_some()
            && self.colblocks.intersect(&other.colblocks).is_some()
    }

    /// Intersection rectangle (`None` if disjoint).
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let banks = self.banks.intersect(&other.banks);
        if banks.is_empty() {
            return None;
        }
        Some(Rect {
            banks,
            rows: self.rows.intersect(&other.rows)?,
            colblocks: self.colblocks.intersect(&other.colblocks)?,
        })
    }
}

/// The physical extent of one fault within one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Extent {
    /// One bit.
    Bit {
        /// Bank index.
        bank: u32,
        /// Row index.
        row: u32,
        /// Column address (not block).
        col: u32,
    },
    /// Several bits within one transfer word (one device sub-block).
    Word {
        /// Bank index.
        bank: u32,
        /// Row index.
        row: u32,
        /// Column address of the word's first column.
        col: u32,
    },
    /// One full device row.
    Row {
        /// Bank index.
        bank: u32,
        /// Row index.
        row: u32,
    },
    /// One column address through a span of rows (one or more subarrays).
    Column {
        /// Bank index.
        bank: u32,
        /// Column address.
        col: u32,
        /// First affected row.
        row_start: u32,
        /// Number of affected rows.
        row_count: u32,
    },
    /// A cluster of consecutive rows within one bank.
    RowCluster {
        /// Bank index.
        bank: u32,
        /// First affected row.
        row_start: u32,
        /// Number of affected rows.
        row_count: u32,
    },
    /// Every cell of a set of banks (whole-bank / multi-bank / whole-device
    /// faults).
    Banks {
        /// Affected banks.
        banks: BankSet,
    },
}

impl Extent {
    /// The footprint in (bank, row, colblock) space. Every extent shape
    /// covers exactly one rectangle, so this returns it by value.
    pub fn footprint(&self, cfg: &DramConfig) -> Rect {
        let all_rows = IdxSet::All { domain: cfg.rows };
        let all_cols = IdxSet::All {
            domain: cfg.blocks_per_row(),
        };
        match *self {
            Extent::Bit { bank, row, col } | Extent::Word { bank, row, col } => Rect {
                banks: BankSet::one(bank),
                rows: IdxSet::One(row),
                colblocks: IdxSet::One(col / cfg.burst_length),
            },
            Extent::Row { bank, row } => Rect {
                banks: BankSet::one(bank),
                rows: IdxSet::One(row),
                colblocks: all_cols,
            },
            Extent::Column {
                bank,
                col,
                row_start,
                row_count,
            } => Rect {
                banks: BankSet::one(bank),
                rows: IdxSet::Range {
                    start: row_start,
                    count: row_count,
                },
                colblocks: IdxSet::One(col / cfg.burst_length),
            },
            Extent::RowCluster {
                bank,
                row_start,
                row_count,
            } => Rect {
                banks: BankSet::one(bank),
                rows: IdxSet::Range {
                    start: row_start,
                    count: row_count,
                },
                colblocks: all_cols,
            },
            Extent::Banks { banks } => Rect {
                banks,
                rows: all_rows,
                colblocks: all_cols,
            },
        }
    }

    /// Number of distinct rows the extent touches per bank
    /// (`None` = all rows). Used by the PPR planner.
    pub fn rows_per_bank(&self, cfg: &DramConfig) -> Option<u64> {
        match *self {
            Extent::Bit { .. } | Extent::Word { .. } | Extent::Row { .. } => Some(1),
            Extent::Column { row_count, .. } | Extent::RowCluster { row_count, .. } => {
                Some(row_count as u64)
            }
            Extent::Banks { .. } => {
                let _ = cfg;
                None
            }
        }
    }

    /// Number of faulty cells (bits) in the device, for reporting.
    pub fn cell_count(&self, cfg: &DramConfig) -> u64 {
        let row_bits = cfg.cols as u64 * cfg.device_width as u64;
        match *self {
            Extent::Bit { .. } => 1,
            Extent::Word { .. } => (cfg.device_width * cfg.burst_length) as u64,
            Extent::Row { .. } => row_bits,
            Extent::Column { row_count, .. } => row_count as u64 * cfg.device_width as u64,
            Extent::RowCluster { row_count, .. } => row_count as u64 * row_bits,
            Extent::Banks { banks } => banks.len() as u64 * cfg.rows as u64 * row_bits,
        }
    }
}

/// One fault region: an extent within one device of one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultRegion {
    /// The rank the device belongs to.
    pub rank: RankId,
    /// Device position within the rank (`0..devices_per_rank`; indices
    /// `>= data_devices_per_rank` are ECC devices).
    pub device: u32,
    /// The physical extent.
    pub extent: Extent,
}

/// Regions kept inline before [`RegionList`] spills to the heap. Almost
/// every fault has exactly one region; multi-rank faults have one per rank
/// of the DIMM, and deployed DIMMs have at most four ranks.
const REGIONS_INLINE: usize = 4;

const REGION_FILLER: FaultRegion = FaultRegion {
    rank: RankId {
        channel: 0,
        dimm: 0,
        rank: 0,
    },
    device: 0,
    extent: Extent::Row { bank: 0, row: 0 },
};

/// The regions of one fault, with small-vector inline storage.
///
/// The Monte Carlo sampler constructs one of these per fault event in the
/// hottest loop of the simulator; keeping the common 1–4 region case
/// inline means a fault event allocates nothing. Dereferences to
/// `[FaultRegion]`, so slice-taking consumers (`ecc::classify_arrival`,
/// the repair planners) are oblivious to the representation.
///
/// # Examples
///
/// ```
/// use relaxfault_faults::{Extent, FaultRegion, RegionList};
/// use relaxfault_dram::RankId;
///
/// let r = FaultRegion {
///     rank: RankId { channel: 0, dimm: 0, rank: 0 },
///     device: 3,
///     extent: Extent::Row { bank: 0, row: 5 },
/// };
/// let list = RegionList::one(r);
/// assert_eq!(list.len(), 1);
/// assert_eq!(list[0], r);
/// ```
#[derive(Debug, Clone)]
pub struct RegionList {
    len: u32,
    inline: [FaultRegion; REGIONS_INLINE],
    /// Holds *all* regions once `len > REGIONS_INLINE`.
    spill: Vec<FaultRegion>,
}

impl RegionList {
    /// An empty list.
    pub fn new() -> Self {
        Self {
            len: 0,
            inline: [REGION_FILLER; REGIONS_INLINE],
            spill: Vec::new(),
        }
    }

    /// A single-region list (the overwhelmingly common case).
    pub fn one(region: FaultRegion) -> Self {
        let mut list = Self::new();
        list.push(region);
        list
    }

    /// Appends a region, spilling to the heap past the inline capacity.
    pub fn push(&mut self, region: FaultRegion) {
        let n = self.len as usize;
        if n < REGIONS_INLINE {
            self.inline[n] = region;
        } else {
            if n == REGIONS_INLINE {
                self.spill.clear();
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(region);
        }
        self.len += 1;
    }

    /// Empties the list, keeping any spill capacity.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The regions as a slice.
    pub fn as_slice(&self) -> &[FaultRegion] {
        let n = self.len as usize;
        if n <= REGIONS_INLINE {
            &self.inline[..n]
        } else {
            &self.spill
        }
    }
}

impl Default for RegionList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for RegionList {
    type Target = [FaultRegion];

    fn deref(&self) -> &[FaultRegion] {
        self.as_slice()
    }
}

impl PartialEq for RegionList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for RegionList {}

impl From<Vec<FaultRegion>> for RegionList {
    fn from(regions: Vec<FaultRegion>) -> Self {
        regions.into_iter().collect()
    }
}

impl FromIterator<FaultRegion> for RegionList {
    fn from_iter<I: IntoIterator<Item = FaultRegion>>(iter: I) -> Self {
        let mut list = Self::new();
        for r in iter {
            list.push(r);
        }
        list
    }
}

impl<'a> IntoIterator for &'a RegionList {
    type Item = &'a FaultRegion;
    type IntoIter = std::slice::Iter<'a, FaultRegion>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FaultRegion {
    /// Footprint of the region in block coordinates: a single [`Rect`].
    pub fn footprint(&self, cfg: &DramConfig) -> Rect {
        self.extent.footprint(cfg)
    }

    /// Verifies the region sits inside the device geometry: a real rank
    /// slot, a real device position, and an extent whose banks, rows, and
    /// columns all exist. Meant for tests and the `RF_CHECK=1` engine hook.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range coordinate.
    pub fn check_geometry(&self, cfg: &DramConfig) -> Result<(), String> {
        if self.rank.channel >= cfg.channels
            || self.rank.dimm >= cfg.dimms_per_channel
            || self.rank.rank >= cfg.ranks_per_dimm
        {
            return Err(format!("rank {:?} outside the node", self.rank));
        }
        if self.device >= cfg.devices_per_rank() {
            return Err(format!(
                "device {} out of range ({})",
                self.device,
                cfg.devices_per_rank()
            ));
        }
        let bank_ok = |bank: u32| {
            if bank < cfg.banks {
                Ok(())
            } else {
                Err(format!("bank {bank} out of range ({})", cfg.banks))
            }
        };
        let row_ok = |row: u32| {
            if row < cfg.rows {
                Ok(())
            } else {
                Err(format!("row {row} out of range ({})", cfg.rows))
            }
        };
        let col_ok = |col: u32| {
            if col < cfg.cols {
                Ok(())
            } else {
                Err(format!("col {col} out of range ({})", cfg.cols))
            }
        };
        match self.extent {
            Extent::Bit { bank, row, col } | Extent::Word { bank, row, col } => {
                bank_ok(bank)?;
                row_ok(row)?;
                col_ok(col)
            }
            Extent::Row { bank, row } => {
                bank_ok(bank)?;
                row_ok(row)
            }
            Extent::Column {
                bank,
                col,
                row_start,
                row_count,
            } => {
                bank_ok(bank)?;
                col_ok(col)?;
                if row_count == 0 {
                    return Err("empty column row span".into());
                }
                row_ok(row_start)?;
                row_ok(row_start + row_count - 1)
            }
            Extent::RowCluster {
                bank,
                row_start,
                row_count,
            } => {
                bank_ok(bank)?;
                if row_count == 0 {
                    return Err("empty row cluster".into());
                }
                row_ok(row_start)?;
                row_ok(row_start + row_count - 1)
            }
            Extent::Banks { banks } => {
                if banks.is_empty() {
                    return Err("empty bank set".into());
                }
                banks.iter().try_for_each(bank_ok)
            }
        }
    }

    /// Whether this region and `other` put errors in the same 64-byte
    /// codeword: same rank, *different* device, overlapping block
    /// footprints.
    pub fn shares_codeword_with(&self, other: &FaultRegion, cfg: &DramConfig) -> bool {
        self.rank == other.rank
            && self.device != other.device
            && self.footprint(cfg).intersects(&other.footprint(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxfault_dram::DramConfig;

    fn cfg() -> DramConfig {
        DramConfig::isca16_reliability()
    }

    fn rank0() -> RankId {
        RankId {
            channel: 0,
            dimm: 0,
            rank: 0,
        }
    }

    #[test]
    fn idxset_intersections() {
        let all = IdxSet::All { domain: 100 };
        let r = IdxSet::Range {
            start: 10,
            count: 20,
        };
        let one = IdxSet::One(15);
        assert_eq!(all.intersect(&r), Some(r));
        assert_eq!(r.intersect(&one), Some(IdxSet::One(15)));
        assert_eq!(IdxSet::One(9).intersect(&r), None);
        assert_eq!(
            r.intersect(&IdxSet::Range {
                start: 25,
                count: 50
            }),
            Some(IdxSet::Range {
                start: 25,
                count: 5
            })
        );
    }

    #[test]
    fn idxset_contains_and_len() {
        let r = IdxSet::Range { start: 5, count: 3 };
        assert!(r.contains(5) && r.contains(7) && !r.contains(8) && !r.contains(4));
        assert_eq!(r.len(), 3);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![5, 6, 7]);
        assert!(!r.is_empty());
    }

    #[test]
    fn idxset_divided() {
        assert_eq!(
            IdxSet::Range {
                start: 30,
                count: 4
            }
            .divided(16),
            IdxSet::Range { start: 1, count: 2 }
        );
        assert_eq!(
            IdxSet::Range {
                start: 32,
                count: 4
            }
            .divided(16),
            IdxSet::One(2)
        );
        assert_eq!(
            IdxSet::Range {
                start: 15,
                count: 2
            }
            .divided(16),
            IdxSet::Range { start: 0, count: 2 }
        );
        assert_eq!(
            IdxSet::All { domain: 256 }.divided(16),
            IdxSet::All { domain: 16 }
        );
        assert_eq!(IdxSet::One(17).divided(16), IdxSet::One(1));
    }

    #[test]
    fn bankset_ops() {
        let a = BankSet::one(3);
        let b = BankSet::all(8);
        assert_eq!(a.intersect(&b), a);
        assert_eq!(b.len(), 8);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3]);
        assert!(BankSet(0).is_empty());
    }

    #[test]
    fn row_fault_footprint() {
        let f = Extent::Row { bank: 2, row: 77 }.footprint(&cfg());
        assert_eq!(f.block_count(), 256);
        assert!(f.colblocks.contains(255));
    }

    #[test]
    fn column_fault_footprint() {
        let f = Extent::Column {
            bank: 1,
            col: 33,
            row_start: 512,
            row_count: 512,
        }
        .footprint(&cfg());
        assert_eq!(f.block_count(), 512);
        assert_eq!(f.colblocks, IdxSet::One(4)); // col 33 → block 4
    }

    #[test]
    fn overlap_requires_shared_block() {
        let c = cfg();
        let row = Extent::Row { bank: 2, row: 77 }.footprint(&c);
        let col_hit = Extent::Column {
            bank: 2,
            col: 0,
            row_start: 0,
            row_count: 512,
        }
        .footprint(&c);
        let col_miss = Extent::Column {
            bank: 2,
            col: 0,
            row_start: 1024,
            row_count: 512,
        }
        .footprint(&c);
        let other_bank = Extent::Row { bank: 3, row: 77 }.footprint(&c);
        assert!(row.intersects(&col_hit));
        assert!(!row.intersects(&col_miss));
        assert!(!row.intersects(&other_bank));
    }

    #[test]
    fn whole_bank_overlaps_everything_in_bank() {
        let c = cfg();
        let bank = Extent::Banks {
            banks: BankSet::one(5),
        }
        .footprint(&c);
        let bit = Extent::Bit {
            bank: 5,
            row: 123,
            col: 456,
        }
        .footprint(&c);
        let bit_elsewhere = Extent::Bit {
            bank: 6,
            row: 123,
            col: 456,
        }
        .footprint(&c);
        assert!(bank.intersects(&bit));
        assert!(!bank.intersects(&bit_elsewhere));
        assert_eq!(bank.block_count(), 65536 * 256);
    }

    #[test]
    fn triple_intersection_via_footprints() {
        let c = cfg();
        let a = Extent::Banks {
            banks: BankSet::one(0),
        }
        .footprint(&c);
        let b = Extent::RowCluster {
            bank: 0,
            row_start: 100,
            row_count: 50,
        }
        .footprint(&c);
        let d = Extent::Row { bank: 0, row: 120 }.footprint(&c);
        let ab = a.intersect(&b).expect("a and b overlap");
        assert!(ab.intersects(&d));
        let d_out = Extent::Row { bank: 0, row: 400 }.footprint(&c);
        assert!(!ab.intersects(&d_out));
    }

    #[test]
    fn shares_codeword_semantics() {
        let c = cfg();
        let a = FaultRegion {
            rank: rank0(),
            device: 0,
            extent: Extent::Row { bank: 1, row: 10 },
        };
        let same_dev = FaultRegion { device: 0, ..a };
        let other_dev_hit = FaultRegion {
            rank: rank0(),
            device: 5,
            extent: Extent::Bit {
                bank: 1,
                row: 10,
                col: 99,
            },
        };
        let other_rank = FaultRegion {
            rank: RankId {
                channel: 1,
                dimm: 0,
                rank: 0,
            },
            device: 5,
            extent: Extent::Bit {
                bank: 1,
                row: 10,
                col: 99,
            },
        };
        assert!(
            !a.shares_codeword_with(&same_dev, &c),
            "same device = one symbol"
        );
        assert!(a.shares_codeword_with(&other_dev_hit, &c));
        assert!(!a.shares_codeword_with(&other_rank, &c));
    }

    #[test]
    fn cell_counts() {
        let c = cfg();
        assert_eq!(
            Extent::Bit {
                bank: 0,
                row: 0,
                col: 0
            }
            .cell_count(&c),
            1
        );
        assert_eq!(
            Extent::Word {
                bank: 0,
                row: 0,
                col: 0
            }
            .cell_count(&c),
            32
        );
        assert_eq!(Extent::Row { bank: 0, row: 0 }.cell_count(&c), 8192);
        assert_eq!(
            Extent::Column {
                bank: 0,
                col: 0,
                row_start: 0,
                row_count: 512
            }
            .cell_count(&c),
            2048
        );
        assert_eq!(
            Extent::Banks {
                banks: BankSet::all(8)
            }
            .cell_count(&c),
            4u64 << 30
        );
    }

    #[test]
    fn region_list_inline_and_spill() {
        let mk = |d: u32| FaultRegion {
            rank: rank0(),
            device: d,
            extent: Extent::Row { bank: 0, row: d },
        };
        let mut list = RegionList::new();
        assert!(list.is_empty());
        for d in 0..7 {
            list.push(mk(d));
            assert_eq!(list.len(), d as usize + 1);
            // Contents survive the inline→spill transition.
            for (i, r) in list.iter().enumerate() {
                assert_eq!(*r, mk(i as u32));
            }
        }
        // Slice coercion and equality.
        let collected: RegionList = (0..7).map(mk).collect();
        assert_eq!(list, collected);
        let slice: &[FaultRegion] = &list;
        assert_eq!(slice.len(), 7);
        // Clearing resets but the list remains usable.
        list.clear();
        assert!(list.is_empty());
        list.push(mk(9));
        assert_eq!(list[0], mk(9));
        assert_eq!(RegionList::one(mk(1)).as_slice(), &[mk(1)]);
        assert_eq!(RegionList::from(vec![mk(2), mk(3)]).len(), 2);
    }

    #[test]
    fn rows_per_bank_for_ppr() {
        let c = cfg();
        assert_eq!(
            Extent::Bit {
                bank: 0,
                row: 0,
                col: 0
            }
            .rows_per_bank(&c),
            Some(1)
        );
        assert_eq!(Extent::Row { bank: 0, row: 9 }.rows_per_bank(&c), Some(1));
        assert_eq!(
            Extent::RowCluster {
                bank: 0,
                row_start: 0,
                row_count: 64
            }
            .rows_per_bank(&c),
            Some(64)
        );
        assert_eq!(
            Extent::Banks {
                banks: BankSet::one(0)
            }
            .rows_per_bank(&c),
            None
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use relaxfault_util::prop::{self, Source};
    use relaxfault_util::{prop_assert, prop_assert_eq};

    fn arb_idx(src: &mut Source, domain: u32) -> IdxSet {
        match src.choice_index(3) {
            0 => IdxSet::All { domain },
            1 => IdxSet::One(src.u32(0, domain - 1)),
            _ => {
                let s = src.u32(0, domain - 1);
                let c = src.u32(1, 63);
                IdxSet::Range {
                    start: s,
                    count: c.min(domain - s),
                }
            }
        }
    }

    fn arb_rect(src: &mut Source) -> Rect {
        Rect {
            banks: BankSet::one(src.u32(0, 7)),
            rows: arb_idx(src, 65536),
            colblocks: arb_idx(src, 256),
        }
    }

    #[test]
    fn intersection_is_symmetric_and_contained() {
        prop::check(128, |src| {
            let a = arb_rect(src);
            let b = arb_rect(src);
            prop_assert_eq!(a.intersects(&b), b.intersects(&a));
            if let Some(i) = a.intersect(&b) {
                prop_assert!(a.intersects(&b));
                prop_assert!(i.block_count() <= a.block_count());
                prop_assert!(i.block_count() <= b.block_count());
                // Every element of the intersection is in both.
                let r = i.rows.iter().next().expect("nonempty");
                let c = i.colblocks.iter().next().expect("nonempty");
                prop_assert!(a.rows.contains(r) && b.rows.contains(r));
                prop_assert!(a.colblocks.contains(c) && b.colblocks.contains(c));
            } else {
                prop_assert!(!a.intersects(&b));
            }
            Ok(())
        });
    }

    #[test]
    fn idxset_divided_covers_members() {
        prop::check(128, |src| {
            let set = arb_idx(src, 256);
            let q = src.u32(1, 31);
            let d = set.divided(q);
            for v in set.iter() {
                prop_assert!(d.contains(v / q), "{v}/{q} missing from {d:?}");
            }
            Ok(())
        });
    }

    #[test]
    fn idxset_intersect_agrees_with_membership() {
        prop::check(128, |src| {
            let a = arb_idx(src, 512);
            let b = arb_idx(src, 512);
            let probe = src.u32(0, 511);
            let i = a.intersect(&b);
            let both = a.contains(probe) && b.contains(probe);
            match i {
                Some(s) => prop_assert_eq!(s.contains(probe), both),
                None => prop_assert!(!both),
            }
            Ok(())
        });
    }
}
