//! Monte Carlo fault injection with the paper's refined variation model.
//!
//! Prior fault models give every device the identical average FIT rate; the
//! paper shows this badly under-predicts observed failure rates and
//! proposes (§4.1.2):
//!
//! 1. *device-to-device variation*: each (device, fault-process) pair draws
//!    its rate from a lognormal around the published mean;
//! 2. *node/DIMM acceleration*: a small fraction of nodes and DIMMs run at
//!    `accel_factor ×` the base rate, with everyone else scaled down so the
//!    population average is preserved (Equation 1).

use crate::geometry::FaultGeometry;
use crate::modes::{FaultMode, FitRates, Transience, HOURS_PER_YEAR};
use crate::region::{FaultRegion, RegionList};
use relaxfault_dram::{DramConfig, RankId};
use relaxfault_util::dist::{poisson, LogNormal};
use relaxfault_util::obs::{self, Counter, Level};
use relaxfault_util::rng::Rng;
use relaxfault_util::trace_event;
use std::sync::OnceLock;

/// The reliability-variation knobs of §4.1.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Coefficient of variation of the per-(device, process) lognormal rate
    /// ("a variance that is 1/4 of the mean"; the paper notes results are
    /// insensitive to the exact value). `0` disables.
    pub device_cv: f64,
    /// Fraction of nodes whose DIMMs all run accelerated (paper: 0.1%).
    pub accel_node_fraction: f64,
    /// Fraction of DIMMs (elsewhere) that run accelerated (paper: 0.1%).
    pub accel_dimm_fraction: f64,
    /// Acceleration factor (paper: 100×, the knee of Figure 9).
    pub accel_factor: f64,
}

impl VariationModel {
    /// The paper's chosen operating point: 0.1% of nodes and DIMMs at 100×,
    /// device CV 0.5.
    pub fn isca16() -> Self {
        Self {
            device_cv: 0.5,
            accel_node_fraction: 0.001,
            accel_dimm_fraction: 0.001,
            accel_factor: 100.0,
        }
    }

    /// The prior-work uniform model (no variation): every device at the
    /// published average rate. This is Figure 9's zero-acceleration point.
    pub fn uniform() -> Self {
        Self {
            device_cv: 0.0,
            accel_node_fraction: 0.0,
            accel_dimm_fraction: 0.0,
            accel_factor: 1.0,
        }
    }

    /// Rate multiplier for non-accelerated devices so the population
    /// average stays at the published FIT (Equation 1), clamped at zero.
    pub fn adjusted_rest_factor(&self) -> f64 {
        let p = self.accel_node_fraction + self.accel_dimm_fraction;
        if p <= 0.0 {
            return 1.0;
        }
        if p >= 1.0 {
            return 0.0;
        }
        ((1.0 - p * self.accel_factor) / (1.0 - p)).max(0.0)
    }
}

struct InjectMetrics {
    total: Counter,
    permanent: Counter,
    by_mode: [Counter; 6],
}

fn inject_metrics() -> &'static InjectMetrics {
    static METRICS: OnceLock<InjectMetrics> = OnceLock::new();
    METRICS.get_or_init(|| InjectMetrics {
        total: obs::counter("faults.injected_total"),
        permanent: obs::counter("faults.injected_permanent"),
        by_mode: FaultMode::ALL.map(|m| obs::counter(&format!("faults.injected.{}", m.key()))),
    })
}

/// Records one injected fault in the observability layer (counters per
/// mode plus a trace-level event). Free when observability is disabled.
pub(crate) fn record_injection(event: &FaultEvent) {
    let m = inject_metrics();
    m.total.inc();
    if event.is_permanent() {
        m.permanent.inc();
    }
    m.by_mode[event.mode as usize].inc();
    trace_event!(target: "faults", Level::Trace, "inject",
        mode = event.mode.key(),
        permanent = event.is_permanent(),
        regions = event.regions.len(),
        time_hours = event.time_hours);
}

/// One fault occurrence in a node's lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Hours since the start of the observation window.
    pub time_hours: f64,
    /// The field-study mode that produced the fault.
    pub mode: FaultMode,
    /// Whether the fault persists.
    pub transience: Transience,
    /// The affected regions (one per rank; multi-rank faults on multi-rank
    /// DIMMs produce several). Stored inline for the common 1-region case.
    pub regions: RegionList,
}

impl FaultEvent {
    /// Whether the fault persists.
    pub fn is_permanent(&self) -> bool {
        self.transience == Transience::Permanent
    }
}

/// All faults one node experiences over the observation window, sorted by
/// time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeFaults {
    /// Events sorted ascending by `time_hours`.
    pub events: Vec<FaultEvent>,
    /// Whether the whole node was FIT-accelerated.
    pub node_accelerated: bool,
    /// DIMM (flat) indices that were individually accelerated.
    pub accelerated_dimms: Vec<u32>,
}

impl NodeFaults {
    /// Resets to the empty lifetime, keeping allocations for reuse.
    pub fn clear(&mut self) {
        self.events.clear();
        self.node_accelerated = false;
        self.accelerated_dimms.clear();
    }

    /// Whether the node has at least one permanent fault — the paper's
    /// definition of a *faulty node*.
    pub fn is_faulty(&self) -> bool {
        self.events.iter().any(FaultEvent::is_permanent)
    }

    /// Permanent events only.
    pub fn permanent(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(|e| e.is_permanent())
    }

    /// Verifies the sampled lifetime against the device geometry: events
    /// sorted by arrival time, every region on an existing rank/device,
    /// every extent inside the bank/row/column space. Meant for tests and
    /// the `RF_CHECK=1` engine hook — O(events), never on by default.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self, cfg: &DramConfig) -> Result<(), String> {
        let mut last = f64::NEG_INFINITY;
        for (i, e) in self.events.iter().enumerate() {
            if !e.time_hours.is_finite() || e.time_hours < 0.0 {
                return Err(format!("event {i} at non-physical time {}", e.time_hours));
            }
            if e.time_hours < last {
                return Err(format!(
                    "event {i} at {} arrives before its predecessor at {last}",
                    e.time_hours
                ));
            }
            last = e.time_hours;
            if e.regions.is_empty() {
                return Err(format!("event {i} has no regions"));
            }
            for r in &e.regions {
                r.check_geometry(cfg)
                    .map_err(|m| format!("event {i}: {m}"))?;
            }
        }
        for &d in &self.accelerated_dimms {
            if d >= cfg.dimms_per_node() {
                return Err(format!(
                    "accelerated DIMM {d} out of range ({})",
                    cfg.dimms_per_node()
                ));
            }
        }
        Ok(())
    }

    /// Number of distinct (DIMM, device) positions with permanent faults.
    pub fn faulty_devices(&self, cfg: &DramConfig) -> usize {
        let mut devs: Vec<(u32, u32)> = self
            .permanent()
            .flat_map(|e| e.regions.iter())
            .map(|r| (r.rank.dimm_index(cfg), r.device))
            .collect();
        devs.sort_unstable();
        devs.dedup();
        devs.len()
    }
}

/// The full §4.1 fault-injection model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Per-device FIT rates by mode.
    pub rates: FitRates,
    /// Physical-extent distributions.
    pub geometry: FaultGeometry,
    /// Variation model (Equation 1 + lognormal).
    pub variation: VariationModel,
    /// Observation window in years (paper: 6).
    pub years: f64,
}

impl FaultModel {
    /// The paper's default model: given rates, 6-year window, default
    /// geometry, §4.1.2 variation.
    pub fn isca16(rates: FitRates, years: f64) -> Self {
        Self {
            rates,
            geometry: FaultGeometry::default(),
            variation: VariationModel::isca16(),
            years,
        }
    }

    /// Same rates but the prior-work uniform fault model.
    pub fn uniform(rates: FitRates, years: f64) -> Self {
        Self {
            variation: VariationModel::uniform(),
            ..Self::isca16(rates, years)
        }
    }

    /// Expected permanent faults per node over the window under the average
    /// rate (for sanity checks; variation preserves this mean by design).
    pub fn expected_permanent_faults(&self, cfg: &DramConfig) -> f64 {
        cfg.devices_per_node() as f64
            * self.rates.total_permanent()
            * 1e-9
            * self.years
            * HOURS_PER_YEAR
    }

    /// Samples one node-lifetime of faults.
    pub fn sample_node<R: Rng + ?Sized>(&self, cfg: &DramConfig, rng: &mut R) -> NodeFaults {
        let hours = self.years * HOURS_PER_YEAR;
        let v = &self.variation;
        let node_acc = v.accel_node_fraction > 0.0 && rng.gen_bool(v.accel_node_fraction);
        let rest = v.adjusted_rest_factor();

        let mut out = NodeFaults {
            events: Vec::new(),
            node_accelerated: node_acc,
            accelerated_dimms: Vec::new(),
        };

        let lognorm = if v.device_cv > 0.0 {
            Some(LogNormal::from_mean_cv(1.0, v.device_cv))
        } else {
            None
        };

        for dimm_flat in 0..cfg.dimms_per_node() {
            let dimm_acc = v.accel_dimm_fraction > 0.0 && rng.gen_bool(v.accel_dimm_fraction);
            if dimm_acc {
                out.accelerated_dimms.push(dimm_flat);
            }
            let factor = if node_acc || dimm_acc {
                v.accel_factor
            } else {
                rest
            };
            if factor == 0.0 {
                continue;
            }
            for rank_in_dimm in 0..cfg.ranks_per_dimm {
                let rank = RankId {
                    channel: dimm_flat / cfg.dimms_per_channel,
                    dimm: dimm_flat % cfg.dimms_per_channel,
                    rank: rank_in_dimm,
                };
                for device in 0..cfg.devices_per_rank() {
                    for (mode, transience, fit) in self.rates.processes() {
                        if fit == 0.0 {
                            continue;
                        }
                        let mut lambda = fit * 1e-9 * hours * factor;
                        if let Some(ln) = &lognorm {
                            lambda *= ln.sample(rng);
                        }
                        let count = poisson(rng, lambda);
                        for _ in 0..count {
                            let time_hours = rng.gen::<f64>() * hours;
                            let regions = self.sample_regions(rng, mode, cfg, rank, device);
                            let event = FaultEvent {
                                time_hours,
                                mode,
                                transience,
                                regions,
                            };
                            record_injection(&event);
                            out.events.push(event);
                        }
                    }
                }
            }
        }
        out.events.sort_by(|a, b| {
            a.time_hours
                .partial_cmp(&b.time_hours)
                .expect("finite times")
        });
        out
    }

    fn sample_regions<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        mode: FaultMode,
        cfg: &DramConfig,
        rank: RankId,
        device: u32,
    ) -> RegionList {
        let extent = self.geometry.sample_extent(rng, mode, cfg);
        if mode == FaultMode::MultiRank && cfg.ranks_per_dimm > 1 {
            // The fault is visible on every rank of the DIMM at the same
            // device position (shared I/O).
            (0..cfg.ranks_per_dimm)
                .map(|rk| FaultRegion {
                    rank: RankId { rank: rk, ..rank },
                    device,
                    extent,
                })
                .collect()
        } else {
            RegionList::one(FaultRegion {
                rank,
                device,
                extent,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relaxfault_util::rng::Rng64;

    fn cfg() -> DramConfig {
        DramConfig::isca16_reliability()
    }

    #[test]
    fn adjusted_factor_matches_paper_arithmetic() {
        // 0.1% + 0.1% at 100× ⇒ ~20% rate reduction for everyone else.
        let v = VariationModel::isca16();
        let f = v.adjusted_rest_factor();
        assert!((f - 0.8016).abs() < 0.001, "got {f}");
        assert_eq!(VariationModel::uniform().adjusted_rest_factor(), 1.0);
    }

    #[test]
    fn adjusted_factor_clamps_at_zero() {
        let v = VariationModel {
            accel_node_fraction: 0.005,
            accel_dimm_fraction: 0.005,
            accel_factor: 200.0,
            device_cv: 0.0,
        };
        assert_eq!(v.adjusted_rest_factor(), 0.0);
    }

    #[test]
    fn faulty_node_fraction_matches_paper() {
        // Figure 10's caption: ~12% of nodes have retired data after
        // 6 years at Cielo rates (our model: ~11–14%).
        let model = FaultModel::isca16(FitRates::cielo(), 6.0);
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(1234);
        let n = 6000;
        let faulty = (0..n)
            .filter(|_| model.sample_node(&c, &mut rng).is_faulty())
            .count();
        let frac = faulty as f64 / n as f64;
        assert!((0.09..0.16).contains(&frac), "faulty fraction {frac}");
    }

    #[test]
    fn expected_fault_count_sanity() {
        let model = FaultModel::uniform(FitRates::cielo(), 6.0);
        let c = cfg();
        assert!((model.expected_permanent_faults(&c) - 0.1514).abs() < 0.001);
        // Empirical mean (permanent only) tracks it.
        let mut rng = Rng64::seed_from_u64(7);
        let n = 4000;
        let total: usize = (0..n)
            .map(|_| model.sample_node(&c, &mut rng).permanent().count())
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 0.1514).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn events_sorted_and_in_window() {
        let model = FaultModel::isca16(FitRates::cielo().scaled(10.0), 6.0);
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(3);
        for _ in 0..50 {
            let node = model.sample_node(&c, &mut rng);
            for w in node.events.windows(2) {
                assert!(w[0].time_hours <= w[1].time_hours);
            }
            for e in &node.events {
                assert!((0.0..6.0 * HOURS_PER_YEAR).contains(&e.time_hours));
                assert!(!e.regions.is_empty());
                for r in &e.regions {
                    assert!(r.device < c.devices_per_rank());
                    assert!(r.rank.channel < c.channels);
                }
            }
        }
    }

    #[test]
    fn mode_mix_tracks_fit_shares() {
        let model = FaultModel::uniform(FitRates::cielo(), 6.0);
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(99);
        let mut bit = 0usize;
        let mut total = 0usize;
        for _ in 0..4000 {
            for e in model.sample_node(&c, &mut rng).permanent() {
                total += 1;
                if e.mode == FaultMode::SingleBitWord {
                    bit += 1;
                }
            }
        }
        let share = bit as f64 / total as f64;
        // 13.0 / 20.0 = 65% of permanent faults.
        assert!((share - 0.65).abs() < 0.05, "bit share {share}");
    }

    #[test]
    fn acceleration_concentrates_faults() {
        // The whole point of the refined model: multi-device DIMMs become
        // far more common than under the uniform model.
        let c = cfg();
        let mut rng = Rng64::seed_from_u64(5);
        let count_multi = |model: &FaultModel, rng: &mut Rng64| {
            let mut multi = 0;
            for _ in 0..8000 {
                let node = model.sample_node(&c, rng);
                // DIMMs with ≥ 2 faulty devices.
                let mut per_dimm: std::collections::HashMap<u32, std::collections::HashSet<u32>> =
                    Default::default();
                for e in node.permanent() {
                    for r in &e.regions {
                        per_dimm
                            .entry(r.rank.dimm_index(&c))
                            .or_default()
                            .insert(r.device);
                    }
                }
                multi += per_dimm.values().filter(|d| d.len() >= 2).count();
            }
            multi
        };
        let uniform = count_multi(&FaultModel::uniform(FitRates::cielo(), 6.0), &mut rng);
        let varied = count_multi(&FaultModel::isca16(FitRates::cielo(), 6.0), &mut rng);
        assert!(
            varied > uniform * 3,
            "varied {varied} should dwarf uniform {uniform}"
        );
    }

    #[test]
    fn accelerated_node_bookkeeping() {
        let model = FaultModel {
            variation: VariationModel {
                accel_node_fraction: 1.0, // force acceleration
                ..VariationModel::isca16()
            },
            ..FaultModel::isca16(FitRates::cielo(), 6.0)
        };
        let mut rng = Rng64::seed_from_u64(8);
        let node = model.sample_node(&cfg(), &mut rng);
        assert!(node.node_accelerated);
        // 100× over 6 years ⇒ ~15 permanent faults expected.
        assert!(node.permanent().count() > 3);
    }

    #[test]
    fn zero_years_means_no_faults() {
        let model = FaultModel::isca16(FitRates::cielo(), 0.0);
        let mut rng = Rng64::seed_from_u64(11);
        let node = model.sample_node(&cfg(), &mut rng);
        assert!(node.events.is_empty());
        assert!(!node.is_faulty());
    }
}
