//! Property tests for the DAG scheduler: over random matrices (chains,
//! diamonds, wide fan-out, and arbitrary DAGs) and worker counts 1–8,
//! every job runs exactly once and never before its dependencies, the
//! farm never deadlocks, and a cyclic spec is rejected at load with the
//! offending edge named.

use relaxfault_farm::{validate, Farm, FarmConfig, JobSpec};
use relaxfault_util::prop::{self, Source};
use relaxfault_util::{prop_assert, prop_assert_eq};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("rf_dag_prop_{tag}_{}_{n}", std::process::id()))
}

/// A random DAG: deps only point at earlier indices, so it is acyclic by
/// construction. Shape classes bias toward the structures the figure
/// matrix actually has.
fn arb_dag(src: &mut Source) -> Vec<JobSpec> {
    let shape = src.choice_index(4);
    let n = src.usize(1, 10);
    (0..n)
        .map(|i| {
            let mut spec = JobSpec::new(format!("j{i:02}"))
                .cost(src.u64(1, 50))
                .retries(0);
            match shape {
                // Chain: j00 <- j01 <- j02 ...
                0 => {
                    if i > 0 {
                        spec = spec.dep(format!("j{:02}", i - 1));
                    }
                }
                // Wide fan-out: everything depends on the single root.
                1 => {
                    if i > 0 {
                        spec = spec.dep("j00");
                    }
                }
                // Diamond stack: depend on the two previous jobs.
                2 => {
                    for back in 1..=2usize {
                        if i >= back {
                            spec = spec.dep(format!("j{:02}", i - back));
                        }
                    }
                }
                // Arbitrary DAG: each earlier job is a dep with p = 1/3.
                _ => {
                    for j in 0..i {
                        if src.weighted(&[2, 1]) == 1 {
                            spec = spec.dep(format!("j{j:02}"));
                        }
                    }
                }
            }
            spec
        })
        .collect()
}

/// Runs the matrix and checks the execution log: exactly-once, and every
/// dependency's entry strictly precedes its dependent's.
fn check_run(specs: &[JobSpec], workers: usize) -> Result<(), String> {
    let dir = scratch_dir("run");
    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut cfg = FarmConfig::new(&dir);
    cfg.workers = workers;
    let mut farm = Farm::new(cfg);
    for s in specs {
        let log = Arc::clone(&log);
        let id = s.id.clone();
        farm.job(s.clone(), move |_ctx| {
            log.lock().expect("log").push(id.clone());
            Ok(())
        });
    }
    let report = farm.run()?;
    let order = log.lock().expect("log").clone();
    let _ = std::fs::remove_dir_all(&dir);

    if report.completed.len() != specs.len() {
        return Err(format!(
            "completed {} of {} jobs",
            report.completed.len(),
            specs.len()
        ));
    }
    if order.len() != specs.len() {
        return Err(format!(
            "log has {} entries for {} jobs",
            order.len(),
            specs.len()
        ));
    }
    let position: std::collections::HashMap<&str, usize> = order
        .iter()
        .enumerate()
        .map(|(i, id)| (id.as_str(), i))
        .collect();
    if position.len() != specs.len() {
        return Err("a job ran more than once".into());
    }
    for s in specs {
        let at = *position
            .get(s.id.as_str())
            .ok_or_else(|| format!("job {} never ran", s.id))?;
        for d in &s.deps {
            let dep_at = *position
                .get(d.as_str())
                .ok_or_else(|| format!("dep {} never ran", d))?;
            if dep_at >= at {
                return Err(format!(
                    "{} ran at {} before its dep {} at {}",
                    s.id, at, d, dep_at
                ));
            }
        }
    }
    Ok(())
}

#[test]
fn random_dags_run_exactly_once_in_dep_order() {
    prop::check(60, |src| {
        let specs = arb_dag(src);
        let workers = src.usize(1, 8);
        let outcome = check_run(&specs, workers);
        prop_assert!(
            outcome.is_ok(),
            "workers={workers}: {}",
            outcome.unwrap_err()
        );
        Ok(())
    });
}

#[test]
fn fixed_shapes_complete_under_every_worker_count() {
    let chain: Vec<JobSpec> = (0..8)
        .map(|i| {
            let mut s = JobSpec::new(format!("j{i:02}"));
            if i > 0 {
                s = s.dep(format!("j{:02}", i - 1));
            }
            s
        })
        .collect();
    let diamond = vec![
        JobSpec::new("j00"),
        JobSpec::new("j01").dep("j00"),
        JobSpec::new("j02").dep("j00"),
        JobSpec::new("j03").dep("j01").dep("j02"),
    ];
    let mut fanout = vec![JobSpec::new("j00")];
    for i in 1..11 {
        fanout.push(JobSpec::new(format!("j{i:02}")).dep("j00"));
    }
    fanout.push({
        let mut join = JobSpec::new("j11");
        for i in 1..11 {
            join = join.dep(format!("j{i:02}"));
        }
        join
    });
    for specs in [&chain, &diamond, &fanout] {
        for workers in 1..=8 {
            check_run(specs, workers).unwrap_or_else(|e| panic!("workers={workers}: {e}"));
        }
    }
}

#[test]
fn budgeted_random_dags_still_complete() {
    // A tight concurrent-cost budget must throttle, never starve.
    prop::check(25, |src| {
        let specs = arb_dag(src);
        let max_cost = specs.iter().map(|s| s.cost).max().unwrap_or(1);
        let budget = src.u64(1, max_cost + 10); // may be below the biggest job
        let dir = scratch_dir("budget");
        let mut cfg = FarmConfig::new(&dir);
        cfg.workers = src.usize(2, 8);
        cfg.budget = Some(budget);
        let mut farm = Farm::new(cfg);
        for s in &specs {
            farm.job(s.clone(), |_ctx| Ok(()));
        }
        let report = farm.run();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert!(report.is_ok(), "budget={budget}: {}", report.unwrap_err());
        prop_assert_eq!(report.unwrap().completed.len(), specs.len());
        Ok(())
    });
}

#[test]
fn random_cycles_are_rejected_with_edge_named() {
    prop::check(40, |src| {
        // An otherwise-valid DAG plus one dependency ring through k jobs.
        let mut specs = arb_dag(src);
        let n = specs.len();
        let k = src.usize(2, n.clamp(2, 5)).min(n.max(2));
        if n < 2 {
            specs.push(JobSpec::new("j01"));
        }
        let n = specs.len();
        let k = k.min(n);
        let start = src.usize(0, n - k.max(2));
        let ring: Vec<String> = (start..start + k.max(2))
            .map(|i| specs[i].id.clone())
            .collect();
        for w in 0..ring.len() {
            let next = ring[(w + 1) % ring.len()].clone();
            let cur = &ring[w];
            let spec = specs
                .iter_mut()
                .find(|s| &s.id == cur)
                .expect("ring member");
            if !spec.deps.contains(&next) {
                *spec = spec.clone().dep(next);
            }
        }
        let err = match validate(&specs) {
            Err(e) => e,
            Ok(()) => {
                prop_assert!(false, "cycle through {ring:?} was accepted");
                unreachable!()
            }
        };
        prop_assert!(err.contains("dependency cycle"), "unexpected error: {err}");
        // The named edge must be a real edge of the spec.
        let edge = err.split("dependency cycle: ").nth(1).unwrap_or("").trim();
        let (from, to) = edge.split_once(" -> ").unwrap_or(("", ""));
        let from_spec = specs.iter().find(|s| s.id == from);
        prop_assert!(
            from_spec.is_some_and(|s| s.deps.iter().any(|d| d == to)),
            "named edge {edge:?} is not an edge of the spec"
        );
        Ok(())
    });
}
