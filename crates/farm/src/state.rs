//! Durable farm state: per-job manifests and the `farm_state` ledger.
//!
//! Both artifacts ride the workspace [`Persist`] contract (schema-
//! versioned, kind-tagged, atomic temp+rename writes), the same layer
//! relcheck repro cases and fleet checkpoints use. Neither carries a
//! timestamp — a resumed farm must converge to byte-identical state, so
//! everything written is a pure function of the matrix spec and the job
//! outcomes.
//!
//! Layout under the farm directory (`<results>/farm/`):
//!
//! ```text
//! farm/farm_state.json   ledger: matrix digest + one record per job
//! farm/jobs/<id>.json    manifest: the job's durable outcome
//! farm/jobs/<id>.repro.json   archived ReproCase for a failed job
//! ```

use relaxfault_util::json::Value;
use relaxfault_util::persist::{self, Persist};
use std::path::{Path, PathBuf};

/// How a job ended up in the manifest/ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Not yet finished (ledger only; a crash leaves these behind).
    Pending,
    /// Completed successfully.
    Ok,
    /// All attempts exhausted.
    Failed,
    /// Never ran: a (transitive) dependency failed.
    Blocked,
}

impl JobStatus {
    /// Stable wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Pending => "pending",
            JobStatus::Ok => "ok",
            JobStatus::Failed => "failed",
            JobStatus::Blocked => "blocked",
        }
    }

    /// Parses the wire string.
    ///
    /// # Errors
    ///
    /// Reports unknown status strings.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "pending" => Ok(JobStatus::Pending),
            "ok" => Ok(JobStatus::Ok),
            "failed" => Ok(JobStatus::Failed),
            "blocked" => Ok(JobStatus::Blocked),
            other => Err(format!("unknown job status {other:?}")),
        }
    }
}

/// Whether a job came from the static matrix or was re-queued by the
/// auto-repair loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobRole {
    /// A matrix job.
    Job,
    /// A diagnostic repro job re-queued after a failure; never retried
    /// and excluded from the matrix drift check.
    Repro,
}

impl JobRole {
    /// Stable wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            JobRole::Job => "job",
            JobRole::Repro => "repro",
        }
    }

    /// Parses the wire string.
    ///
    /// # Errors
    ///
    /// Reports unknown role strings.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "job" => Ok(JobRole::Job),
            "repro" => Ok(JobRole::Repro),
            other => Err(format!("unknown job role {other:?}")),
        }
    }
}

/// Durable outcome of one job, written next to its artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct JobManifest {
    /// Job id (also the file stem).
    pub id: String,
    /// [`crate::spec::JobSpec::digest`] at the time the job ran.
    pub digest: u64,
    /// Matrix job or re-queued diagnostic.
    pub role: JobRole,
    /// Final status.
    pub status: JobStatus,
    /// Attempts consumed (1 = first try succeeded; 0 for blocked jobs).
    pub attempts: u64,
    /// Dependency ids, as declared.
    pub deps: Vec<String>,
    /// Scheduling cost, as declared.
    pub cost: u64,
    /// Failure reason of the last attempt, for failed jobs.
    pub reason: Option<String>,
    /// Path of the archived ReproCase, when the auto-repair loop
    /// captured one.
    pub repro: Option<String>,
}

impl Persist for JobManifest {
    const KIND: &'static str = "farm_job";
    const SCHEMA_VERSION: u64 = 1;

    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("schema_version", Value::from(Self::SCHEMA_VERSION)),
            ("kind", Value::from(Self::KIND)),
            ("id", Value::from(self.id.as_str())),
            ("digest", persist::hex(self.digest)),
            ("role", Value::from(self.role.as_str())),
            ("status", Value::from(self.status.as_str())),
            ("attempts", Value::from(self.attempts)),
            (
                "deps",
                Value::Array(self.deps.iter().map(|d| Value::from(d.as_str())).collect()),
            ),
            ("cost", Value::from(self.cost)),
        ];
        if let Some(reason) = &self.reason {
            fields.push(("reason", Value::from(reason.as_str())));
        }
        if let Some(repro) = &self.repro {
            fields.push(("repro", Value::from(repro.as_str())));
        }
        Value::object(fields)
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        Self::check_header(v)?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{key} must be a string"))
        };
        let deps = v
            .get("deps")
            .and_then(Value::as_array)
            .ok_or("deps must be an array")?
            .iter()
            .map(|d| {
                d.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "deps entries must be strings".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(JobManifest {
            id: str_field("id")?,
            digest: persist::parse_hex_field(v, "digest")?,
            role: JobRole::parse(&str_field("role")?)?,
            status: JobStatus::parse(&str_field("status")?)?,
            attempts: persist::parse_u64_field(v, "attempts")?,
            deps,
            cost: persist::parse_u64_field(v, "cost")?,
            reason: v.get("reason").and_then(Value::as_str).map(str::to_string),
            repro: v.get("repro").and_then(Value::as_str).map(str::to_string),
        })
    }
}

/// One job's record in the [`FarmLedger`].
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Job id.
    pub id: String,
    /// The job's spec digest when recorded.
    pub digest: u64,
    /// Matrix job or diagnostic.
    pub role: JobRole,
    /// Last durable status.
    pub status: JobStatus,
    /// Attempts consumed by the run that produced `status`.
    pub attempts: u64,
}

/// The farm's durable progress ledger (Persist kind `farm_state`).
///
/// Saved atomically after every state transition, so a killed farm can
/// resume exactly where it died: `Ok` records are skipped (after a drift
/// check against the current spec), everything else re-runs.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmLedger {
    /// [`crate::spec::spec_digest`] of the matrix this ledger belongs to.
    pub spec_digest: u64,
    /// Per-job records, sorted by id.
    pub jobs: Vec<LedgerEntry>,
}

impl Persist for FarmLedger {
    const KIND: &'static str = "farm_state";
    const SCHEMA_VERSION: u64 = 1;

    fn to_json(&self) -> Value {
        let jobs = self
            .jobs
            .iter()
            .map(|j| {
                Value::object([
                    ("id", Value::from(j.id.as_str())),
                    ("digest", persist::hex(j.digest)),
                    ("role", Value::from(j.role.as_str())),
                    ("status", Value::from(j.status.as_str())),
                    ("attempts", Value::from(j.attempts)),
                ])
            })
            .collect();
        Value::object([
            ("schema_version", Value::from(Self::SCHEMA_VERSION)),
            ("kind", Value::from(Self::KIND)),
            ("spec_digest", persist::hex(self.spec_digest)),
            ("jobs", Value::Array(jobs)),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        Self::check_header(v)?;
        let jobs = v
            .get("jobs")
            .and_then(Value::as_array)
            .ok_or("jobs must be an array")?
            .iter()
            .map(|j| {
                let str_field = |key: &str| -> Result<&str, String> {
                    j.get(key)
                        .and_then(Value::as_str)
                        .ok_or_else(|| format!("jobs[].{key} must be a string"))
                };
                Ok(LedgerEntry {
                    id: str_field("id")?.to_string(),
                    digest: persist::parse_hex_field(j, "digest")?,
                    role: JobRole::parse(str_field("role")?)?,
                    status: JobStatus::parse(str_field("status")?)?,
                    attempts: persist::parse_u64_field(j, "attempts")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(FarmLedger {
            spec_digest: persist::parse_hex_field(v, "spec_digest")?,
            jobs,
        })
    }
}

impl FarmLedger {
    /// Upserts a record, keeping the vector sorted by id.
    pub fn record(&mut self, entry: LedgerEntry) {
        match self.jobs.binary_search_by(|e| e.id.cmp(&entry.id)) {
            Ok(i) => self.jobs[i] = entry,
            Err(i) => self.jobs.insert(i, entry),
        }
    }

    /// The record for `id`, if any.
    pub fn entry(&self, id: &str) -> Option<&LedgerEntry> {
        self.jobs
            .binary_search_by(|e| e.id.cmp(&id.to_string()))
            .ok()
            .map(|i| &self.jobs[i])
    }
}

/// The farm state directory under a results root.
pub fn farm_dir(results: &Path) -> PathBuf {
    results.join("farm")
}

/// The ledger path under a results root.
pub fn ledger_path(results: &Path) -> PathBuf {
    farm_dir(results).join("farm_state.json")
}

/// A job manifest path under a results root.
pub fn manifest_path(results: &Path, id: &str) -> PathBuf {
    farm_dir(results).join("jobs").join(format!("{id}.json"))
}

/// Where a failed job's captured ReproCase is archived.
pub fn repro_archive_path(results: &Path, id: &str) -> PathBuf {
    farm_dir(results)
        .join("jobs")
        .join(format!("{id}.repro.json"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> JobManifest {
        JobManifest {
            id: "fig10".into(),
            digest: 0xABCD_EF01_2345_6789,
            role: JobRole::Job,
            status: JobStatus::Failed,
            attempts: 3,
            deps: vec!["tables".into()],
            cost: 4000,
            reason: Some("exit 3".into()),
            repro: Some("farm/jobs/fig10.repro.json".into()),
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = manifest();
        assert_eq!(JobManifest::parse_str(&m.to_json().to_pretty()).unwrap(), m);
        // Optional fields stay absent.
        let ok = JobManifest {
            status: JobStatus::Ok,
            reason: None,
            repro: None,
            ..manifest()
        };
        let text = ok.to_json().to_pretty();
        assert!(!text.contains("reason"));
        assert_eq!(JobManifest::parse_str(&text).unwrap(), ok);
    }

    #[test]
    fn ledger_round_trips_and_upserts_sorted() {
        let mut ledger = FarmLedger {
            spec_digest: u64::MAX,
            jobs: vec![],
        };
        for id in ["c", "a", "b"] {
            ledger.record(LedgerEntry {
                id: id.into(),
                digest: 7,
                role: JobRole::Job,
                status: JobStatus::Pending,
                attempts: 0,
            });
        }
        assert_eq!(
            ledger
                .jobs
                .iter()
                .map(|j| j.id.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
        ledger.record(LedgerEntry {
            id: "b".into(),
            digest: 7,
            role: JobRole::Job,
            status: JobStatus::Ok,
            attempts: 1,
        });
        assert_eq!(ledger.jobs.len(), 3);
        assert_eq!(ledger.entry("b").unwrap().status, JobStatus::Ok);
        let parsed = FarmLedger::parse_str(&ledger.to_json().to_pretty()).unwrap();
        assert_eq!(parsed, ledger);
    }

    #[test]
    fn foreign_kind_rejected() {
        let m = manifest()
            .to_json()
            .to_pretty()
            .replace("farm_job", "farm_state");
        assert!(JobManifest::parse_str(&m).unwrap_err().contains("kind"));
    }
}
