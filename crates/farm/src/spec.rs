//! Job and matrix specifications for the figure farm.
//!
//! A [`JobSpec`] is the *static* identity of a job: its id, the ids it
//! depends on, an abstract scheduling cost, and how many retries it gets.
//! The runner derives everything durable from this identity — the per-job
//! digest stored in manifests and the whole-matrix digest stored in the
//! `farm_state` ledger — so that a resumed farm can prove it is continuing
//! the *same* matrix and reject a drifted one instead of silently
//! re-running it.
//!
//! [`validate`] is the single admission gate: duplicate ids, unknown
//! dependencies, unsafe id characters, and dependency cycles are all
//! rejected at load time, and a cycle error names the offending edge
//! (`"a -> b"`) so the spec author knows exactly which arrow to cut.

use relaxfault_util::persist::{digest_debug, fold_digest};

/// Static identity of one farm job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Unique id; also the manifest file stem, so it must be
    /// filesystem-safe (`[A-Za-z0-9._-]`).
    pub id: String,
    /// Ids of jobs that must complete successfully first.
    pub deps: Vec<String>,
    /// Abstract scheduling weight for the budget-aware dispatcher
    /// (e.g. trial count); never zero-cost, minimum 1.
    pub cost: u64,
    /// Extra attempts after the first failure (0 = fail immediately).
    pub retries: u32,
}

impl JobSpec {
    /// A job with no deps, unit cost, and no retries.
    pub fn new(id: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            deps: Vec::new(),
            cost: 1,
            retries: 0,
        }
    }

    /// Adds a dependency edge.
    #[must_use]
    pub fn dep(mut self, id: impl Into<String>) -> Self {
        self.deps.push(id.into());
        self
    }

    /// Sets the scheduling cost (clamped to at least 1).
    #[must_use]
    pub fn cost(mut self, cost: u64) -> Self {
        self.cost = cost.max(1);
        self
    }

    /// Sets the retry budget.
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Digest of the job's static identity; any change to id, deps, cost,
    /// or retries changes it, which is what resume uses to detect drift.
    pub fn digest(&self) -> u64 {
        digest_debug(&(&self.id, &self.deps, self.cost, self.retries))
    }
}

/// Whole-matrix digest: per-job digests folded in sorted-id order, so the
/// digest is independent of declaration order but sensitive to every
/// job's identity.
pub fn spec_digest(specs: &[JobSpec]) -> u64 {
    let mut digests: Vec<(&str, u64)> = specs.iter().map(|s| (s.id.as_str(), s.digest())).collect();
    digests.sort_unstable_by(|a, b| a.0.cmp(b.0));
    digests
        .iter()
        .fold(0u64, |acc, (_, d)| fold_digest(acc, *d))
}

fn id_is_safe(id: &str) -> bool {
    !id.is_empty()
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// Validates a job matrix: unique filesystem-safe ids, known deps, no
/// self-edges, and no cycles.
///
/// # Errors
///
/// Returns the first violation found; a cycle error names the offending
/// edge, e.g. `"dependency cycle: b -> a"`.
pub fn validate(specs: &[JobSpec]) -> Result<(), String> {
    let mut index = std::collections::HashMap::new();
    for (i, s) in specs.iter().enumerate() {
        if !id_is_safe(&s.id) {
            return Err(format!(
                "job id {:?} is not filesystem-safe ([A-Za-z0-9._-] only)",
                s.id
            ));
        }
        if index.insert(s.id.as_str(), i).is_some() {
            return Err(format!("duplicate job id {:?}", s.id));
        }
    }
    for s in specs {
        for d in &s.deps {
            if d == &s.id {
                return Err(format!("job {:?} depends on itself", s.id));
            }
            if !index.contains_key(d.as_str()) {
                return Err(format!("job {:?} depends on unknown job {:?}", s.id, d));
            }
        }
    }
    // DFS cycle check over dep edges, naming the edge that closes the
    // first cycle found (deterministic: jobs and deps in declared order).
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Gray,
        Black,
    }
    fn visit(
        u: usize,
        specs: &[JobSpec],
        index: &std::collections::HashMap<&str, usize>,
        marks: &mut [Mark],
    ) -> Result<(), String> {
        marks[u] = Mark::Gray;
        for d in &specs[u].deps {
            let v = index[d.as_str()];
            match marks[v] {
                Mark::Gray => {
                    return Err(format!(
                        "dependency cycle: {} -> {}",
                        specs[u].id, specs[v].id
                    ))
                }
                Mark::White => visit(v, specs, index, marks)?,
                Mark::Black => {}
            }
        }
        marks[u] = Mark::Black;
        Ok(())
    }
    let mut marks = vec![Mark::White; specs.len()];
    for u in 0..specs.len() {
        if marks[u] == Mark::White {
            visit(u, specs, &index, &mut marks)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_tracks_identity() {
        let a = JobSpec::new("a").cost(10).retries(2);
        assert_eq!(a.digest(), JobSpec::new("a").cost(10).retries(2).digest());
        assert_ne!(a.digest(), JobSpec::new("a").cost(11).retries(2).digest());
        assert_ne!(
            a.digest(),
            JobSpec::new("a").cost(10).retries(2).dep("b").digest()
        );
    }

    #[test]
    fn spec_digest_is_order_independent_but_content_sensitive() {
        let a = JobSpec::new("a");
        let b = JobSpec::new("b").dep("a");
        assert_eq!(
            spec_digest(&[a.clone(), b.clone()]),
            spec_digest(&[b.clone(), a.clone()])
        );
        assert_ne!(
            spec_digest(&[a.clone(), b]),
            spec_digest(&[a, JobSpec::new("b")])
        );
    }

    #[test]
    fn validation_rejects_malformed_specs() {
        let dup = vec![JobSpec::new("a"), JobSpec::new("a")];
        assert!(validate(&dup).unwrap_err().contains("duplicate"));

        let unknown = vec![JobSpec::new("a").dep("ghost")];
        assert!(validate(&unknown).unwrap_err().contains("ghost"));

        let selfdep = vec![JobSpec::new("a").dep("a")];
        assert!(validate(&selfdep).unwrap_err().contains("itself"));

        let unsafe_id = vec![JobSpec::new("a/b")];
        assert!(validate(&unsafe_id)
            .unwrap_err()
            .contains("filesystem-safe"));
    }

    #[test]
    fn cycle_error_names_the_offending_edge() {
        let specs = vec![
            JobSpec::new("a").dep("b"),
            JobSpec::new("b").dep("c"),
            JobSpec::new("c").dep("a"),
        ];
        let err = validate(&specs).unwrap_err();
        assert!(err.contains("dependency cycle"), "{err}");
        assert!(err.contains("c -> a"), "{err}");

        let two = vec![JobSpec::new("x").dep("y"), JobSpec::new("y").dep("x")];
        let err = validate(&two).unwrap_err();
        assert!(err.contains("y -> x"), "{err}");
    }

    #[test]
    fn diamond_is_acyclic() {
        let specs = vec![
            JobSpec::new("root"),
            JobSpec::new("l").dep("root"),
            JobSpec::new("r").dep("root"),
            JobSpec::new("join").dep("l").dep("r"),
        ];
        assert!(validate(&specs).is_ok());
    }
}
