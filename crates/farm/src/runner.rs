//! The resumable DAG runner: worker pool, budget-aware dispatch, bounded
//! retries, crash points, and the auto-repair loop.
//!
//! The scheduler owns all durable state transitions; workers only execute
//! job closures (which travel through the work/done channels, so retries
//! and hook-spawned diagnostics need no shared job table). Persistence
//! ordering is the crash-consistency contract: a job's manifest is
//! written **before** its ledger record, so a ledger record with status
//! `ok` proves the manifest exists, and a crash at any instant leaves the
//! pair either both stale (job re-runs) or both current (job is
//! skipped). Job side effects must therefore be idempotent overwrites —
//! exactly what every bench bin already does — and the crash matrix test
//! proves the resumed artifacts are byte-identical to an uninterrupted
//! run.
//!
//! Two injectable crash points mirror the fleet checkpoint matrix
//! (`RF_FLEET_CRASH_AT`):
//!
//! - `RF_FARM_CRASH_AT=<job>`: die at the job *boundary*, right after
//!   `<job>`'s manifest and ledger record are persisted.
//! - `RF_FARM_CRASH_AT=mid:<job>`: die *mid-job* — `<job>`'s side
//!   effects have landed but neither manifest nor ledger record was
//!   written, so resume must re-run it.
//!
//! The runner returns the simulated crash as an `Err` only after every
//! in-flight worker has drained (the pool is scoped), so a caller can
//! immediately resume without racing leftover writes.

use crate::spec::{self, JobSpec};
use crate::state::{self, FarmLedger, JobManifest, JobRole, JobStatus, LedgerEntry};
use relaxfault_util::json::Value;
use relaxfault_util::persist::{self, Persist};
use relaxfault_util::serve;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// What a job closure gets to see when it runs.
#[derive(Debug, Clone)]
pub struct JobCtx {
    /// The job's id.
    pub id: String,
    /// 1-based attempt number.
    pub attempt: u32,
    /// The results root the farm writes under.
    pub dir: PathBuf,
}

/// A job body: runs on a worker thread, returns a failure reason on
/// error. Side effects must be idempotent overwrites — a re-run after a
/// mid-job crash must converge to identical artifacts.
pub type JobFn = Box<dyn Fn(&JobCtx) -> Result<(), String> + Send>;

/// A schedulable job: static identity plus the closure that does the
/// work.
pub struct Job {
    /// Static identity (id, deps, cost, retries).
    pub spec: JobSpec,
    /// Matrix job or re-queued diagnostic.
    pub role: JobRole,
    run: JobFn,
}

impl Job {
    /// A matrix job.
    pub fn new(
        spec: JobSpec,
        run: impl Fn(&JobCtx) -> Result<(), String> + Send + 'static,
    ) -> Self {
        Job {
            spec,
            role: JobRole::Job,
            run: Box::new(run),
        }
    }

    /// A diagnostic job for the auto-repair loop: never retried,
    /// excluded from the matrix drift digest.
    pub fn diagnostic(
        spec: JobSpec,
        run: impl Fn(&JobCtx) -> Result<(), String> + Send + 'static,
    ) -> Self {
        Job {
            spec,
            role: JobRole::Repro,
            run: Box::new(run),
        }
    }
}

/// Context handed to the repair hook when a job exhausts its attempts.
#[derive(Debug)]
pub struct JobFailure<'a> {
    /// The failed job's id.
    pub id: &'a str,
    /// The last attempt's failure reason.
    pub reason: &'a str,
    /// Attempts consumed.
    pub attempts: u32,
    /// The results root (where a captured ReproCase would have landed).
    pub dir: &'a Path,
}

/// What the repair hook produced for a failure: a diagnostic job to
/// re-queue and, optionally, the path of the ReproCase it archived next
/// to the job manifest (recorded in the failed job's manifest).
pub struct Repair {
    /// The diagnostic job (run with [`JobRole::Repro`] semantics).
    pub job: Job,
    /// Archived ReproCase path, if one was captured.
    pub archive: Option<PathBuf>,
}

/// Called on the scheduler thread when a matrix job finally fails.
pub type RepairHook = Box<dyn Fn(&JobFailure) -> Option<Repair>>;

/// Where to inject a simulated crash (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die right after this job's manifest + ledger record persisted.
    Boundary(String),
    /// Die after this job's side effects but before any persistence.
    MidJob(String),
}

/// Parses `RF_FARM_CRASH_AT` (`"<job>"` or `"mid:<job>"`).
pub fn crash_at_from_env() -> Option<CrashPoint> {
    let v = std::env::var("RF_FARM_CRASH_AT").ok()?;
    let v = v.trim();
    if v.is_empty() {
        return None;
    }
    Some(match v.strip_prefix("mid:") {
        Some(id) => CrashPoint::MidJob(id.to_string()),
        None => CrashPoint::Boundary(v.to_string()),
    })
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Results root; durable farm state lives under `<dir>/farm/`.
    pub dir: PathBuf,
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Max total cost of concurrently running jobs; `None` = unlimited.
    /// A job whose cost alone exceeds the budget still runs — alone.
    pub budget: Option<u64>,
    /// Base retry backoff; attempt `n`'s re-run waits `n * backoff_ms`.
    pub backoff_ms: u64,
    /// Injected crash point (normally [`crash_at_from_env`]).
    pub crash_at: Option<CrashPoint>,
    /// Resume from an existing `farm_state` ledger: completed jobs are
    /// skipped after a drift check, everything else re-runs.
    pub resume: bool,
}

impl FarmConfig {
    /// A serial farm over `dir` with no budget and no backoff.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FarmConfig {
            dir: dir.into(),
            workers: 1,
            budget: None,
            backoff_ms: 0,
            crash_at: None,
            resume: false,
        }
    }
}

/// What happened, for callers that render summaries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FarmReport {
    /// Matrix jobs that completed this run, in completion order.
    pub completed: Vec<String>,
    /// Matrix jobs skipped because the ledger already records them ok.
    pub skipped: Vec<String>,
    /// `(id, reason)` for jobs that exhausted their attempts.
    pub failed: Vec<(String, String)>,
    /// Jobs that never ran because a dependency failed, sorted by id.
    pub blocked: Vec<String>,
    /// `(id, succeeded)` for diagnostic jobs the repair hook re-queued.
    pub repro: Vec<(String, bool)>,
    /// Total attempts consumed across all jobs this run.
    pub attempts: u64,
}

/// The orchestrator: collect jobs, then [`Farm::run`].
pub struct Farm {
    cfg: FarmConfig,
    jobs: Vec<Job>,
    hook: Option<RepairHook>,
}

struct WorkMsg {
    slot: usize,
    id: String,
    attempt: u32,
    backoff: Duration,
    run: JobFn,
}

struct DoneMsg {
    slot: usize,
    attempt: u32,
    result: Result<(), String>,
    run: JobFn,
}

#[derive(Clone, Copy, PartialEq)]
enum SlotState {
    Pending,
    Running,
    Done,
    Failed,
    Blocked,
}

/// Per-slot bookkeeping the scheduler mutates as results arrive.
struct SlotRow {
    spec: JobSpec,
    role: JobRole,
    state: SlotState,
    /// Display status for `/progress`.
    shown: &'static str,
    attempts: u64,
    repro: Option<String>,
    /// Unfinished dependency count.
    waiting: usize,
    /// Slots that depend on this one.
    dependents: Vec<usize>,
    /// The closure, parked here between dispatches.
    run: Option<JobFn>,
}

impl Farm {
    /// An empty farm over `cfg`.
    pub fn new(cfg: FarmConfig) -> Self {
        Farm {
            cfg,
            jobs: Vec::new(),
            hook: None,
        }
    }

    /// Adds a matrix job.
    pub fn job(
        &mut self,
        spec: JobSpec,
        run: impl Fn(&JobCtx) -> Result<(), String> + Send + 'static,
    ) -> &mut Self {
        self.jobs.push(Job::new(spec, run));
        self
    }

    /// Installs the auto-repair hook, called once per finally-failed
    /// matrix job.
    pub fn repair_hook(
        &mut self,
        hook: impl Fn(&JobFailure) -> Option<Repair> + 'static,
    ) -> &mut Self {
        self.hook = Some(Box::new(hook));
        self
    }

    /// Runs the DAG to completion (or to the injected crash point).
    ///
    /// # Errors
    ///
    /// Returns spec-validation errors, ledger drift on resume, I/O
    /// failures persisting state, and the simulated-crash error when a
    /// crash point fires. Job failures are *not* errors — they are
    /// reported in the [`FarmReport`] and surfaced as `failed`/`blocked`
    /// manifests.
    pub fn run(self) -> Result<FarmReport, String> {
        let Farm { cfg, jobs, hook } = self;
        let specs: Vec<JobSpec> = jobs.iter().map(|j| j.spec.clone()).collect();
        spec::validate(&specs)?;
        if let Some(j) = jobs.iter().find(|j| j.role != JobRole::Job) {
            return Err(format!(
                "job {:?} has role repro; diagnostics come from the repair hook",
                j.spec.id
            ));
        }
        let matrix_digest = spec::spec_digest(&specs);
        let ledger_path = state::ledger_path(&cfg.dir);
        let (mut ledger, done_before) = load_or_init_ledger(&cfg, &specs, matrix_digest)?;
        ledger.save(&ledger_path)?;

        // --- Scheduling state ---------------------------------------------
        let mut slot_of: HashMap<String, usize> = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| (j.spec.id.clone(), i))
            .collect();
        let mut rows: Vec<SlotRow> = jobs
            .into_iter()
            .map(|job| {
                let done = done_before.contains(job.spec.id.as_str());
                SlotRow {
                    state: if done {
                        SlotState::Done
                    } else {
                        SlotState::Pending
                    },
                    shown: if done { "skipped" } else { "pending" },
                    attempts: 0,
                    repro: None,
                    waiting: 0,
                    dependents: Vec::new(),
                    spec: job.spec,
                    role: job.role,
                    run: Some(job.run),
                }
            })
            .collect();
        for i in 0..rows.len() {
            for d in rows[i].spec.deps.clone() {
                let di = slot_of[d.as_str()];
                if rows[di].state != SlotState::Done {
                    rows[i].waiting += 1;
                }
                rows[di].dependents.push(i);
            }
        }
        let mut ready: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.state == SlotState::Pending && r.waiting == 0)
            .map(|(i, _)| i)
            .collect();
        let mut pending = rows.iter().filter(|r| r.state != SlotState::Done).count();
        let mut report = FarmReport {
            skipped: {
                let mut v: Vec<String> = done_before.iter().cloned().collect();
                v.sort();
                v
            },
            ..FarmReport::default()
        };

        publish(&rows, matrix_digest, "running");

        let workers = cfg.workers.max(1);
        let (work_tx, work_rx) = mpsc::channel::<WorkMsg>();
        let (done_tx, done_rx) = mpsc::channel::<DoneMsg>();
        let work_rx = Arc::new(Mutex::new(work_rx));

        std::thread::scope(|scope| -> Result<FarmReport, String> {
            for _ in 0..workers {
                let work_rx = Arc::clone(&work_rx);
                let done_tx = done_tx.clone();
                let dir = cfg.dir.clone();
                scope.spawn(move || loop {
                    let msg = { work_rx.lock().expect("work queue").recv() };
                    let Ok(WorkMsg {
                        slot,
                        id,
                        attempt,
                        backoff,
                        run,
                    }) = msg
                    else {
                        break;
                    };
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    let ctx = JobCtx {
                        id,
                        attempt,
                        dir: dir.clone(),
                    };
                    let result = run(&ctx);
                    if done_tx
                        .send(DoneMsg {
                            slot,
                            attempt,
                            result,
                            run,
                        })
                        .is_err()
                    {
                        break;
                    }
                });
            }
            drop(done_tx);

            let mut running: usize = 0;
            let mut running_cost: u64 = 0;
            let outcome = (|| -> Result<FarmReport, String> {
                dispatch(
                    &mut rows,
                    &mut ready,
                    &mut running,
                    &mut running_cost,
                    &cfg,
                    &work_tx,
                )?;
                while pending > 0 {
                    if running == 0 {
                        return Err(format!(
                            "scheduler stalled with {pending} pending job(s) and nothing running"
                        ));
                    }
                    let DoneMsg {
                        slot,
                        attempt,
                        result,
                        run,
                    } = done_rx.recv().map_err(|_| "worker pool died".to_string())?;
                    rows[slot].run = Some(run);
                    report.attempts += 1;
                    let id = rows[slot].spec.id.clone();
                    if let Some(CrashPoint::MidJob(cid)) = &cfg.crash_at {
                        if *cid == id {
                            publish(&rows, matrix_digest, "crashed");
                            return Err(format!(
                                "simulated crash mid-job {id:?} (RF_FARM_CRASH_AT): side \
                                 effects written, manifest not; resume with --resume"
                            ));
                        }
                    }
                    match result {
                        Ok(()) => {
                            let row = &mut rows[slot];
                            let entry = LedgerEntry {
                                id: id.clone(),
                                digest: row.spec.digest(),
                                role: row.role,
                                status: JobStatus::Ok,
                                attempts: attempt as u64,
                            };
                            manifest_of(row, JobStatus::Ok, attempt as u64, None)
                                .save(&state::manifest_path(&cfg.dir, &id))?;
                            ledger.record(entry);
                            ledger.save(&ledger_path)?;
                            row.state = SlotState::Done;
                            row.shown = "ok";
                            row.attempts = attempt as u64;
                            pending -= 1;
                            running -= 1;
                            running_cost -= row.spec.cost;
                            if row.role == JobRole::Repro {
                                report.repro.push((id.clone(), true));
                            } else {
                                report.completed.push(id.clone());
                            }
                            if let Some(CrashPoint::Boundary(cid)) = &cfg.crash_at {
                                if *cid == id {
                                    publish(&rows, matrix_digest, "crashed");
                                    return Err(format!(
                                        "simulated crash at job boundary {id:?} \
                                         (RF_FARM_CRASH_AT); resume with --resume"
                                    ));
                                }
                            }
                            for dep in rows[slot].dependents.clone() {
                                rows[dep].waiting -= 1;
                                if rows[dep].waiting == 0 && rows[dep].state == SlotState::Pending {
                                    ready.push(dep);
                                }
                            }
                        }
                        Err(reason) => {
                            let retries = if rows[slot].role == JobRole::Repro {
                                0
                            } else {
                                rows[slot].spec.retries
                            };
                            if attempt <= retries {
                                rows[slot].attempts = attempt as u64;
                                let msg = WorkMsg {
                                    slot,
                                    id,
                                    attempt: attempt + 1,
                                    backoff: Duration::from_millis(cfg.backoff_ms * attempt as u64),
                                    run: rows[slot].run.take().expect("closure parked"),
                                };
                                work_tx
                                    .send(msg)
                                    .map_err(|_| "worker pool died".to_string())?;
                            } else {
                                let repair = if rows[slot].role == JobRole::Job {
                                    hook.as_ref().and_then(|h| {
                                        h(&JobFailure {
                                            id: &id,
                                            reason: &reason,
                                            attempts: attempt,
                                            dir: &cfg.dir,
                                        })
                                    })
                                } else {
                                    None
                                };
                                let repro_path = repair.as_ref().and_then(|r| {
                                    r.archive.as_ref().map(|p| p.display().to_string())
                                });
                                let row = &mut rows[slot];
                                manifest_of(
                                    row,
                                    JobStatus::Failed,
                                    attempt as u64,
                                    Some(reason.clone()),
                                )
                                .with_repro(repro_path.clone())
                                .save(&state::manifest_path(&cfg.dir, &id))?;
                                ledger.record(LedgerEntry {
                                    id: id.clone(),
                                    digest: row.spec.digest(),
                                    role: row.role,
                                    status: JobStatus::Failed,
                                    attempts: attempt as u64,
                                });
                                ledger.save(&ledger_path)?;
                                row.state = SlotState::Failed;
                                row.shown = "failed";
                                row.attempts = attempt as u64;
                                row.repro = repro_path;
                                pending -= 1;
                                running -= 1;
                                running_cost -= row.spec.cost;
                                if row.role == JobRole::Repro {
                                    report.repro.push((id.clone(), false));
                                } else {
                                    report.failed.push((id.clone(), reason));
                                }
                                block_dependents(
                                    slot,
                                    &mut rows,
                                    &mut ready,
                                    &mut ledger,
                                    &cfg.dir,
                                    &mut pending,
                                    &mut report,
                                )?;
                                ledger.save(&ledger_path)?;
                                if let Some(repair) = repair {
                                    enqueue_diagnostic(
                                        repair.job,
                                        &mut rows,
                                        &mut slot_of,
                                        &mut ready,
                                        &mut pending,
                                    )?;
                                }
                            }
                        }
                    }
                    publish(&rows, matrix_digest, "running");
                    dispatch(
                        &mut rows,
                        &mut ready,
                        &mut running,
                        &mut running_cost,
                        &cfg,
                        &work_tx,
                    )?;
                }
                publish(&rows, matrix_digest, "done");
                Ok(report)
            })();
            // Close the queue so idle workers exit; in-flight workers drain
            // into the still-open done channel and exit on the next recv.
            // `scope` then joins every worker, so no leftover thread can
            // race a subsequent resume.
            drop(work_tx);
            outcome
        })
    }
}

fn load_or_init_ledger(
    cfg: &FarmConfig,
    specs: &[JobSpec],
    matrix_digest: u64,
) -> Result<(FarmLedger, HashSet<String>), String> {
    let ledger_path = state::ledger_path(&cfg.dir);
    let mut done_before = HashSet::new();
    if cfg.resume && ledger_path.exists() {
        let prior = FarmLedger::load(&ledger_path)?;
        if prior.spec_digest != matrix_digest {
            return Err(format!(
                "{}: farm_state drift: ledger matrix digest {:#018x} != current {:#018x}; \
                 refusing to resume a different matrix",
                ledger_path.display(),
                prior.spec_digest,
                matrix_digest
            ));
        }
        let by_id: HashMap<&str, &JobSpec> = specs.iter().map(|s| (s.id.as_str(), s)).collect();
        for entry in &prior.jobs {
            if entry.role == JobRole::Repro {
                continue; // diagnostics are not part of the matrix
            }
            let Some(spec) = by_id.get(entry.id.as_str()) else {
                return Err(format!(
                    "{}: farm_state drift: ledger records unknown job {:?}",
                    ledger_path.display(),
                    entry.id
                ));
            };
            if entry.digest != spec.digest() {
                return Err(format!(
                    "{}: farm_state drift: job {:?} digest {:#018x} != current {:#018x}",
                    ledger_path.display(),
                    entry.id,
                    entry.digest,
                    spec.digest()
                ));
            }
            if entry.status == JobStatus::Ok {
                done_before.insert(entry.id.clone());
            }
        }
        return Ok((prior, done_before));
    }
    let mut ledger = FarmLedger {
        spec_digest: matrix_digest,
        jobs: Vec::new(),
    };
    for s in specs {
        ledger.record(LedgerEntry {
            id: s.id.clone(),
            digest: s.digest(),
            role: JobRole::Job,
            status: JobStatus::Pending,
            attempts: 0,
        });
    }
    Ok((ledger, done_before))
}

impl JobManifest {
    fn with_repro(mut self, repro: Option<String>) -> Self {
        self.repro = repro;
        self
    }
}

fn manifest_of(
    row: &SlotRow,
    status: JobStatus,
    attempts: u64,
    reason: Option<String>,
) -> JobManifest {
    JobManifest {
        id: row.spec.id.clone(),
        digest: row.spec.digest(),
        role: row.role,
        status,
        attempts,
        deps: row.spec.deps.clone(),
        cost: row.spec.cost,
        reason,
        repro: None,
    }
}

/// Budget-aware greedy dispatch, biggest cost first (ties by id); a job
/// that alone exceeds the budget runs when nothing else is running, so
/// the farm never starves.
fn dispatch(
    rows: &mut [SlotRow],
    ready: &mut Vec<usize>,
    running: &mut usize,
    running_cost: &mut u64,
    cfg: &FarmConfig,
    work_tx: &mpsc::Sender<WorkMsg>,
) -> Result<(), String> {
    ready.sort_by(|&a, &b| {
        rows[b]
            .spec
            .cost
            .cmp(&rows[a].spec.cost)
            .then(rows[a].spec.id.cmp(&rows[b].spec.id))
    });
    let mut i = 0;
    while i < ready.len() {
        let slot = ready[i];
        let cost = rows[slot].spec.cost;
        let fits = *running == 0 || cfg.budget.is_none_or(|b| *running_cost + cost <= b);
        if !fits {
            i += 1;
            continue;
        }
        ready.remove(i);
        rows[slot].state = SlotState::Running;
        rows[slot].shown = "running";
        *running += 1;
        *running_cost += cost;
        let msg = WorkMsg {
            slot,
            id: rows[slot].spec.id.clone(),
            attempt: 1,
            backoff: Duration::ZERO,
            run: rows[slot].run.take().expect("closure parked"),
        };
        work_tx
            .send(msg)
            .map_err(|_| "worker pool died".to_string())?;
    }
    Ok(())
}

/// Marks every not-yet-run transitive dependent of `slot` blocked, with
/// manifests and ledger records (ledger saved by the caller).
fn block_dependents(
    slot: usize,
    rows: &mut [SlotRow],
    ready: &mut Vec<usize>,
    ledger: &mut FarmLedger,
    dir: &Path,
    pending: &mut usize,
    report: &mut FarmReport,
) -> Result<(), String> {
    let mut stack = vec![slot];
    while let Some(u) = stack.pop() {
        for dep in rows[u].dependents.clone() {
            if rows[dep].state != SlotState::Pending {
                continue;
            }
            let reason = format!("dependency {:?} failed", rows[u].spec.id);
            manifest_of(&rows[dep], JobStatus::Blocked, 0, Some(reason))
                .save(&state::manifest_path(dir, &rows[dep].spec.id))?;
            ledger.record(LedgerEntry {
                id: rows[dep].spec.id.clone(),
                digest: rows[dep].spec.digest(),
                role: rows[dep].role,
                status: JobStatus::Blocked,
                attempts: 0,
            });
            rows[dep].state = SlotState::Blocked;
            rows[dep].shown = "blocked";
            *pending -= 1;
            report.blocked.push(rows[dep].spec.id.clone());
            ready.retain(|&r| r != dep);
            stack.push(dep);
        }
    }
    report.blocked.sort();
    Ok(())
}

/// Admits a hook-produced diagnostic job into the scheduler.
fn enqueue_diagnostic(
    job: Job,
    rows: &mut Vec<SlotRow>,
    slot_of: &mut HashMap<String, usize>,
    ready: &mut Vec<usize>,
    pending: &mut usize,
) -> Result<(), String> {
    if slot_of.contains_key(&job.spec.id) {
        return Err(format!(
            "repair hook returned duplicate job id {:?}",
            job.spec.id
        ));
    }
    let mut dspec = job.spec;
    dspec.deps.clear(); // diagnostics run immediately, dependency-free
    spec::validate(std::slice::from_ref(&dspec))?;
    let slot = rows.len();
    slot_of.insert(dspec.id.clone(), slot);
    rows.push(SlotRow {
        spec: dspec,
        role: JobRole::Repro,
        state: SlotState::Pending,
        shown: "pending",
        attempts: 0,
        repro: None,
        waiting: 0,
        dependents: Vec::new(),
        run: Some(job.run),
    });
    ready.push(slot);
    *pending += 1;
    Ok(())
}

/// Publishes the farm's live state on the `/progress` endpoint.
fn publish(rows: &[SlotRow], matrix_digest: u64, status: &str) {
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by(|&a, &b| rows[a].spec.id.cmp(&rows[b].spec.id));
    let jobs: Vec<Value> = order
        .iter()
        .map(|&i| {
            let r = &rows[i];
            let mut fields = vec![
                ("id", Value::from(r.spec.id.as_str())),
                ("role", Value::from(r.role.as_str())),
                ("status", Value::from(r.shown)),
                ("attempts", Value::from(r.attempts)),
            ];
            if let Some(repro) = &r.repro {
                fields.push(("repro", Value::from(repro.as_str())));
            }
            Value::object(fields)
        })
        .collect();
    let count = |want: &str| Value::from(rows.iter().filter(|r| r.shown == want).count());
    serve::publish_progress(Value::object([
        ("component", Value::from("farm")),
        ("status", Value::from(status)),
        ("matrix_digest", persist::hex(matrix_digest)),
        ("total", Value::from(rows.len())),
        ("ok", count("ok")),
        ("skipped", count("skipped")),
        ("running", count("running")),
        ("failed", count("failed")),
        ("blocked", count("blocked")),
        ("jobs", Value::Array(jobs)),
    ]));
}
