//! Figure-farm orchestration: a resumable DAG job runner with
//! auto-repair.
//!
//! The paper's result set is 14 figure/ablation bins; this crate turns
//! "regenerate the paper" into one resumable command. A [`Farm`] runs a
//! job matrix as a dependency DAG on a `std::thread` worker pool with:
//!
//! * **Per-job manifests** (Persist kind `farm_job`) and a **`farm_state`
//!   ledger** — both schema-versioned, atomically written, and
//!   timestamp-free, so a killed farm resumes exactly where it died and
//!   converges to byte-identical artifacts. Completed jobs are skipped by
//!   digest; in-flight jobs re-run.
//! * **Drift rejection** — a resumed ledger whose matrix digest or
//!   per-job digests disagree with the current spec is an error, never a
//!   silent re-run.
//! * **Bounded retries with backoff** and **budget-aware scheduling**
//!   (greedy biggest-cost-first dispatch under a concurrent-cost cap).
//! * **An auto-repair loop** — when a job exhausts its attempts, a
//!   [`RepairHook`] can archive the relcheck ReproCase the failing run
//!   captured and re-queue a minimal diagnostic job (role `repro`, never
//!   retried), without stopping the rest of the DAG.
//! * **Injected crash points** (`RF_FARM_CRASH_AT=<job>` / `mid:<job>`)
//!   so the crash matrix test and the CI gate can kill the farm at every
//!   boundary and prove resume is exact.
//!
//! This crate depends only on `relaxfault-util` — job bodies are caller
//! closures, so the farm stays generic over what a "job" does.
//!
//! # Examples
//!
//! ```
//! use relaxfault_farm::{Farm, FarmConfig, JobSpec};
//!
//! let dir = std::env::temp_dir().join(format!("farm_doc_{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut farm = Farm::new(FarmConfig::new(&dir));
//! farm.job(JobSpec::new("table"), |ctx| {
//!     std::fs::create_dir_all(&ctx.dir).map_err(|e| e.to_string())?;
//!     std::fs::write(ctx.dir.join("table.txt"), "42\n").map_err(|e| e.to_string())
//! });
//! farm.job(JobSpec::new("figure").dep("table"), |_ctx| Ok(()));
//! let report = farm.run().unwrap();
//! assert_eq!(report.completed.len(), 2);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod runner;
pub mod spec;
pub mod state;

pub use runner::{
    crash_at_from_env, CrashPoint, Farm, FarmConfig, FarmReport, Job, JobCtx, JobFailure, JobFn,
    Repair, RepairHook,
};
pub use spec::{spec_digest, validate, JobSpec};
pub use state::{
    farm_dir, ledger_path, manifest_path, repro_archive_path, FarmLedger, JobManifest, JobRole,
    JobStatus, LedgerEntry,
};
